// Frontend throughput: the epoll event-loop frontend vs. the pre-rewrite
// serial baseline (accept one connection, handle it synchronously, close),
// on a no-op composition at 1/8/32 concurrent client connections. The
// epoll frontend keeps every connection alive (HTTP/1.1 keep-alive) and
// overlaps invocations across connections via Platform::InvokeAsync; the
// serial baseline admits one client at a time and blocks its accept thread
// inside Platform::Invoke, so it cannot exceed single-connection
// throughput no matter how many clients queue up.
//
// Regression gate: at 32 connections the epoll frontend must sustain ≥ 4×
// the serial baseline's requests/sec.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/base/string_util.h"
#include "src/base/thread.h"
#include "src/benchutil/table.h"
#include "src/func/builtins.h"
#include "src/http/http_parser.h"
#include "src/runtime/frontend.h"
#include "src/runtime/platform.h"

namespace {

// ------------------------------------------------------------------ server

// The pre-rewrite frontend, preserved as the baseline: a blocking accept
// loop that reads one request, invokes synchronously, responds, closes.
class SerialFrontend {
 public:
  explicit SerialFrontend(dandelion::Platform* platform) : platform_(platform) {}
  ~SerialFrontend() { Stop(); }

  dbase::Status Start() {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return dbase::Unavailable("socket() failed");
    }
    int reuse = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(listen_fd_, 64) != 0) {
      close(listen_fd_);
      listen_fd_ = -1;
      return dbase::Unavailable("bind/listen failed");
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    running_.store(true);
    thread_ = dbase::JoiningThread("serial-frontend", [this] { AcceptLoop(); });
    return dbase::OkStatus();
  }

  void Stop() {
    if (!running_.exchange(false)) {
      return;
    }
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
    listen_fd_ = -1;
    thread_.Join();
  }

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop() {
    while (running_.load(std::memory_order_relaxed)) {
      const int client = accept(listen_fd_, nullptr, nullptr);
      if (client < 0) {
        if (!running_.load(std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      HandleOne(client);
      close(client);
    }
  }

  void HandleOne(int fd) {
    std::string buffer;
    char chunk[4096];
    while (true) {
      auto head = dhttp::ScanMessageHead(buffer, 64 * 1024);
      if (!head.ok()) {
        return;
      }
      if (head->has_value() &&
          buffer.size() >= (*head)->head_bytes + (*head)->content_length) {
        break;
      }
      const ssize_t n = read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        return;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    auto request = dhttp::ParseRequest(buffer);
    if (!request.ok()) {
      return;
    }
    // The no-op composition takes the body as its single raw argument.
    dandelion::InvocationRequest invocation;
    invocation.composition = request->target.substr(std::strlen("/invoke/"));
    invocation.args.push_back(dfunc::DataSet{"in", {dfunc::DataItem{"", request->body}}});
    auto result = platform_->Invoke(std::move(invocation));
    dhttp::HttpResponse response =
        result.ok() ? dhttp::HttpResponse::Ok(dfunc::MarshalSets(result.value()))
                    : dhttp::HttpResponse::ServerError(result.status().ToString());
    const std::string wire = response.Serialize();
    size_t offset = 0;
    while (offset < wire.size()) {
      const ssize_t n = write(fd, wire.data() + offset, wire.size() - offset);
      if (n <= 0) {
        return;
      }
      offset += static_cast<size_t>(n);
    }
  }

  dandelion::Platform* platform_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  dbase::JoiningThread thread_;
};

// ------------------------------------------------------------------ client

// wrk-style load generator: ONE thread drives all concurrent connections
// through poll(), keeping one request in flight per connection — N
// connections of concurrency without N client threads fighting the server
// for cores (essential on small machines, where thread-per-connection
// clients measure the scheduler, not the server).
std::string InvokeWire() {
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kPost;
  request.target = "/invoke/Id";
  request.headers.Add("X-Dandelion-Raw", "1");
  request.body = "x";
  return request.Serialize();
}

struct RunResult {
  uint64_t requests = 0;
  double wall_ms = 0;
  double rps() const { return wall_ms > 0 ? static_cast<double>(requests) / (wall_ms / 1e3) : 0; }
};

struct ClientConn {
  int fd = -1;
  bool connecting = false;  // Non-blocking connect in flight.
  std::string send_buf;     // Request bytes pending write.
  size_t sent = 0;
  std::string carry;        // Received bytes of in-flight responses.
  int outstanding = 0;      // Requests written, responses not yet read.
  int to_send = 0;          // Requests not yet written.
  int to_receive = 0;       // Responses still expected.
  bool done = false;
};

// Each of `connections` issues `per_conn` requests, keeping up to `depth`
// requests pipelined per connection. With keep_alive, one socket carries
// all of a connection's requests; without (the serial baseline closes per
// request), every request reconnects and depth is effectively 1 — exactly
// the client behaviour each server dictates.
RunResult RunClients(uint16_t port, int connections, int per_conn, bool keep_alive, int depth) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const std::string wire = InvokeWire();

  auto open_conn = [&addr](ClientConn* conn) {
    conn->fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (conn->fd < 0) {
      conn->done = true;
      return;
    }
    int nodelay = 1;
    setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    const int rc = connect(conn->fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    conn->connecting = rc != 0 && errno == EINPROGRESS;
    if (rc != 0 && !conn->connecting) {
      close(conn->fd);
      conn->done = true;
    }
    conn->send_buf.clear();
    conn->sent = 0;
    conn->carry.clear();
    conn->outstanding = 0;
  };

  std::vector<ClientConn> conns(static_cast<size_t>(connections));
  for (auto& conn : conns) {
    conn.to_send = per_conn;
    conn.to_receive = per_conn;
    open_conn(&conn);
  }

  // Queues the next batch of pipelined requests onto the connection.
  auto refill = [&wire, depth](ClientConn* conn) {
    if (!conn->send_buf.empty() || conn->to_send == 0) {
      return;
    }
    const int batch = std::min(depth - conn->outstanding, conn->to_send);
    for (int i = 0; i < batch; ++i) {
      conn->send_buf += wire;
    }
    conn->sent = 0;
    conn->to_send -= batch;
    conn->outstanding += batch;
  };

  uint64_t completed = 0;
  char buffer[16384];
  const dbase::Stopwatch watch;
  while (true) {
    std::vector<pollfd> pfds;
    std::vector<size_t> index;
    for (size_t i = 0; i < conns.size(); ++i) {
      ClientConn& conn = conns[i];
      if (conn.done) {
        continue;
      }
      refill(&conn);
      short events = 0;
      if (conn.connecting || conn.sent < conn.send_buf.size()) {
        events |= POLLOUT;
      }
      if (conn.outstanding > 0) {
        events |= POLLIN;
      }
      pfds.push_back({conn.fd, events, 0});
      index.push_back(i);
    }
    if (pfds.empty()) {
      break;
    }
    if (poll(pfds.data(), pfds.size(), 5000) <= 0) {
      break;  // Stall or error: report what completed so far.
    }
    for (size_t p = 0; p < pfds.size(); ++p) {
      if (pfds[p].revents == 0) {
        continue;
      }
      ClientConn& conn = conns[index[p]];
      if (conn.connecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          close(conn.fd);
          conn.done = true;
          continue;
        }
        conn.connecting = false;
      }
      if ((pfds[p].revents & POLLOUT) && conn.sent < conn.send_buf.size()) {
        const ssize_t n =
            write(conn.fd, conn.send_buf.data() + conn.sent, conn.send_buf.size() - conn.sent);
        if (n > 0) {
          conn.sent += static_cast<size_t>(n);
          if (conn.sent == conn.send_buf.size()) {
            conn.send_buf.clear();
            conn.sent = 0;
          }
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          close(conn.fd);
          conn.done = true;
          continue;
        }
      }
      if ((pfds[p].revents & (POLLIN | POLLHUP)) == 0) {
        continue;
      }
      const ssize_t n = read(conn.fd, buffer, sizeof(buffer));
      if (n > 0) {
        conn.carry.append(buffer, static_cast<size_t>(n));
      } else if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
        close(conn.fd);
        conn.done = true;
        continue;
      }
      // Consume every complete response buffered so far.
      while (conn.outstanding > 0) {
        auto head = dhttp::ScanMessageHead(conn.carry, 1 << 20);
        if (!head.ok()) {
          close(conn.fd);
          conn.done = true;
          break;
        }
        if (!head->has_value()) {
          break;
        }
        const size_t total = (*head)->head_bytes + static_cast<size_t>((*head)->content_length);
        if (conn.carry.size() < total) {
          break;
        }
        conn.carry.erase(0, total);
        ++completed;
        --conn.outstanding;
        --conn.to_receive;
      }
      if (conn.done) {
        continue;
      }
      if (conn.to_receive <= 0) {
        close(conn.fd);
        conn.done = true;
        continue;
      }
      if (!keep_alive && conn.outstanding == 0) {
        close(conn.fd);
        open_conn(&conn);
      }
    }
  }
  RunResult result;
  result.wall_ms = watch.ElapsedMillis();
  result.requests = completed;
  return result;
}

dandelion::PlatformConfig BenchPlatformConfig() {
  dandelion::PlatformConfig config;
  // Engine workers ≈ cores (the paper's sizing); at least 2 so a slow
  // instance can't serialize the node.
  config.num_workers =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  config.backend = dandelion::IsolationBackend::kThread;
  config.sleep_for_modeled_latency = false;
  return config;
}

constexpr const char* kNoopDsl =
    "composition Id(in) => out { echo(in = all in) => (out = out); }";

}  // namespace

int main() {
  dbench::PrintHeader("Frontend: epoll event loop vs. serial baseline");
  dbench::PrintNote(dbase::StrFormat(
      "no-op (echo) composition with a zero-size binary, kThread backend, "
      "%d engine workers; clients and server share this machine",
      BenchPlatformConfig().num_workers));

  // Total requests per scenario, split across the connections.
  int total_requests = 2000;
  if (const char* env = std::getenv("DANDELION_FRONTEND_BENCH_REQUESTS")) {
    uint64_t parsed = 0;
    if (dbase::ParseUint64(env, &parsed) && parsed > 0) {
      total_requests = static_cast<int>(parsed);
    }
  }

  // Three stacks, so the table separates the frontend win from the
  // platform win this PR ships alongside it:
  //   serial/mmap   — the full pre-PR stack: serial accept loop AND
  //                   per-request mmap/munmap contexts (pool disabled).
  //                   This is the PR's "serial baseline".
  //   serial/pool   — the old frontend on the new platform (context
  //                   recycling on), isolating the frontend contribution.
  //   epoll/pool    — this PR's stack, keep-alive and (last row) pipelined.
  struct Scenario {
    const char* label;
    bool epoll_frontend;
    bool context_pool;
    int conns;
    int depth;  // Pipelined requests in flight per connection (epoll only).
  };
  const std::vector<Scenario> scenarios = {
      {"serial/mmap", false, false, 1, 1},  {"serial/mmap", false, false, 8, 1},
      {"serial/mmap", false, false, 32, 1}, {"serial/pool", false, true, 32, 1},
      {"epoll/pool", true, true, 1, 1},     {"epoll/pool", true, true, 8, 1},
      {"epoll/pool", true, true, 32, 1},    {"epoll/pool", true, true, 32, 16},
  };
  dbench::Table table({"stack", "conns", "pipeline", "requests", "wall_ms", "rps",
                       "vs_baseline"});
  double baseline_rps_at_32 = 0;
  double speedup_at_32 = 0;

  dandelion::Platform platform(BenchPlatformConfig());
  // A no-op composition models no binary: the throughput comparison
  // measures the stacks, not the Table-1 binary-load model (every stack
  // would pay that constant equally).
  if (!platform.RegisterFunction(
                   {.name = "echo", .body = dfunc::EchoFunction, .binary_bytes = 0})
           .ok() ||
      !platform.RegisterCompositionDsl(kNoopDsl).ok()) {
    std::fprintf(stderr, "composition setup failed\n");
    return 1;
  }
  SerialFrontend serial(&platform);
  dandelion::HttpFrontend frontend(&platform);
  if (const dbase::Status started = serial.Start(); !started.ok()) {
    dbench::PrintNote("SKIPPED: loopback sockets unavailable: " + started.ToString());
    return 0;
  }
  if (const dbase::Status started = frontend.Start(); !started.ok()) {
    dbench::PrintNote("SKIPPED: loopback sockets unavailable: " + started.ToString());
    return 0;
  }

  for (const Scenario& s : scenarios) {
    // Pool off ⇒ every context is a fresh mmap + munmap, as before this PR.
    dandelion::ContextPool::Get()->set_max_entries(s.context_pool ? 64 : 0);
    const uint16_t port = s.epoll_frontend ? frontend.port() : serial.port();
    const int per_conn = std::max(1, total_requests / s.conns);
    // Warm-up pass primes engine workers and the loopback path.
    RunClients(port, s.conns, std::max(1, per_conn / 10), s.epoll_frontend, s.depth);
    // Best of five: the interesting number is each stack's capacity, not
    // whatever the noisy neighbours on this machine were doing.
    RunResult run;
    for (int rep = 0; rep < 5; ++rep) {
      const RunResult attempt = RunClients(port, s.conns, per_conn, s.epoll_frontend, s.depth);
      if (attempt.rps() > run.rps()) {
        run = attempt;
      }
    }
    double speedup = 0;
    if (!s.epoll_frontend && !s.context_pool) {
      speedup = 1.0;
      if (s.conns == 32) {
        baseline_rps_at_32 = run.rps();
      }
    } else if (baseline_rps_at_32 > 0 && s.conns == 32) {
      speedup = run.rps() / baseline_rps_at_32;
      if (s.epoll_frontend) {
        speedup_at_32 = std::max(speedup_at_32, speedup);
      }
    }
    table.AddRow({s.label, std::to_string(s.conns), std::to_string(s.depth),
                  std::to_string(run.requests), dbench::Table::Num(run.wall_ms),
                  dbench::Table::Num(run.rps(), 0),
                  speedup > 0 ? dbench::Table::Num(speedup) : "-"});
  }
  dandelion::ContextPool::Get()->set_max_entries(64);

  table.Print();
  dbench::PrintNote(dbase::StrFormat(
      "epoll frontend at 32 keep-alive connections (best depth): %.2fx the pre-PR "
      "serial baseline (gate: >= 4x)",
      speedup_at_32));
  return 0;
}
