// Ablation (design choice called out in DESIGN.md / §7.5): what does the PI
// control plane buy over static core splits? We run a workload whose
// compute/comm mix shifts over time — compute-heavy first half, I/O-heavy
// second half — and compare the dynamic controller against every static
// compute/comm split. A static split can win one phase; only the
// controller tracks both.
#include <cstdio>
#include <vector>

#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

namespace {

using dsim::Calibration;

std::vector<dsim::SimRequest> MakeShiftingWorkload() {
  const dbase::Micros kHalf = 6 * dbase::kMicrosPerSecond;

  // Phase 1: compute-heavy (matmul-like).
  dsim::AppShape compute;
  compute.app_id = 1;
  compute.compute_us = Calibration::kMatmul128Us;
  compute.compute_jitter = 0.03;

  // Phase 2: I/O-heavy (fetch-and-compute with slow remote).
  dsim::AppShape io;
  io.app_id = 2;
  io.compute_us = Calibration::kPhaseComputeUs;
  io.comm_us = 6000;
  io.compute_jitter = 0.03;

  auto compute_stream =
      dsim::BurstyStream(compute, {{kHalf, 2500.0}, {kHalf, 100.0}}, 0xAB1A);
  auto io_stream = dsim::BurstyStream(io, {{kHalf, 200.0}, {kHalf, 9000.0}}, 0xAB1B);
  return dsim::MergeStreams({std::move(compute_stream), std::move(io_stream)});
}

}  // namespace

int main() {
  dbench::PrintHeader("Ablation: PI control plane vs static compute/comm splits");
  dbench::PrintNote("workload: compute-heavy first 6s (2500 RPS matmul), I/O-heavy last 6s"
                    " (9000 RPS fetch-and-compute) on 16 cores, comm parallelism 32/core");

  constexpr int kCores = 16;
  const auto requests = MakeShiftingWorkload();

  dbench::Table table({"configuration", "p99 compute app [ms]", "p99 I/O app [ms]",
                       "p99 overall [ms]"});

  auto run = [&](const char* label, bool controller, int comm_cores) {
    dsim::DandelionSimConfig config;
    config.cores = kCores;
    config.sandbox_us = Calibration::kDandelionKvmX86Us;
    config.enable_controller = controller;
    config.initial_comm_cores = comm_cores;
    config.comm_parallelism = 32;
    auto metrics = dsim::SimulateDandelion(config, requests);
    auto cell = [](double v) {
      return v > 5000.0 ? std::string(">5000") : dbench::Table::Num(v, 1);
    };
    const auto& per_app = metrics.per_app_latency_ms;
    table.AddRow({label,
                  cell(per_app.count(1) ? per_app.at(1).Percentile(99) : 0.0),
                  cell(per_app.count(2) ? per_app.at(2).Percentile(99) : 0.0),
                  cell(metrics.latency_ms.Percentile(99))});
  };

  run("PI controller (dynamic)", true, 1);
  for (int comm : {1, 2, 4, 8, 12}) {
    run(dbase::StrFormat("static: %d comm / %d compute", comm, kCores - comm).c_str(), false,
        comm);
  }
  table.Print();

  dbench::PrintNote("expected: small static comm allocations win the compute phase but drown in"
                    " the I/O phase (and vice versa); the controller tracks the mix and is at or"
                    " near the best column in every row");
  return 0;
}
