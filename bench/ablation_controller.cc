// Ablation (design choice called out in DESIGN.md / §7.5): what does the
// elasticity control plane buy over static core splits, and how do the
// shipped policies compare? Two experiments:
//
//  1. Policy vs static splits: a workload whose compute/comm mix shifts
//     over time — compute-heavy first half, I/O-heavy second half — run
//     under each dpolicy policy and under every static compute/comm split.
//     A static split can win one phase; only a controller tracks both.
//
//  2. Burst recovery (gated): after a long compute-only phase parks the
//     comm allocation at its floor, a sustained comm flood arrives. We
//     count controller ticks until the comm allocation recovers to what the
//     flood needs. HysteresisPolicy moves multiple cores per decision, so
//     it must recover in strictly fewer ticks than PaperPiPolicy's
//     one-core-per-tick crawl — the bench exits nonzero if it does not.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/policy/elasticity.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

namespace {

using dsim::Calibration;

std::vector<dsim::SimRequest> MakeShiftingWorkload() {
  const dbase::Micros kHalf = 6 * dbase::kMicrosPerSecond;

  // Phase 1: compute-heavy (matmul-like).
  dsim::AppShape compute;
  compute.app_id = 1;
  compute.compute_us = Calibration::kMatmul128Us;
  compute.compute_jitter = 0.03;

  // Phase 2: I/O-heavy (fetch-and-compute with slow remote).
  dsim::AppShape io;
  io.app_id = 2;
  io.compute_us = Calibration::kPhaseComputeUs;
  io.comm_us = 6000;
  io.compute_jitter = 0.03;

  auto compute_stream =
      dsim::BurstyStream(compute, {{kHalf, 2500.0}, {kHalf, 100.0}}, 0xAB1A);
  auto io_stream = dsim::BurstyStream(io, {{kHalf, 200.0}, {kHalf, 9000.0}}, 0xAB1B);
  return dsim::MergeStreams({std::move(compute_stream), std::move(io_stream)});
}

// Compute-only warmup that parks the comm allocation low, then a sustained
// comm flood that needs most of the node's cores on communication.
std::vector<dsim::SimRequest> MakeBurstWorkload(dbase::Micros* burst_start_us) {
  const dbase::Micros kWarm = 3 * dbase::kMicrosPerSecond;
  const dbase::Micros kFlood = 4 * dbase::kMicrosPerSecond;
  *burst_start_us = kWarm;

  dsim::AppShape compute;
  compute.app_id = 1;
  compute.compute_us = Calibration::kMatmul128Us;
  compute.compute_jitter = 0.0;

  dsim::AppShape io;
  io.app_id = 2;
  io.compute_us = 300;
  io.comm_us = 8000;
  io.compute_jitter = 0.0;

  auto compute_stream = dsim::BurstyStream(
      compute, {{kWarm, 1500.0}, {kFlood, 200.0}}, 0xB0B0);
  // A tiny trickle of comm during warmup keeps the allocation at its floor
  // of one (a zero-comm workload would free even the last comm core).
  auto io_stream = dsim::BurstyStream(io, {{kWarm, 20.0}, {kFlood, 4000.0}}, 0xB0B1);
  return dsim::MergeStreams({std::move(compute_stream), std::move(io_stream)});
}

// Ticks from the burst start until the comm allocation first reaches
// `target_comm` (-1 if it never does).
int TicksToRecover(const dsim::SimMetrics& metrics, dbase::Micros burst_start_us,
                   int target_comm) {
  int ticks = 0;
  for (const auto& [t, comm] : metrics.comm_core_trace) {
    if (t < burst_start_us) {
      continue;
    }
    ++ticks;
    if (comm >= target_comm) {
      return ticks;
    }
  }
  return -1;
}

}  // namespace

int main() {
  dbench::PrintHeader("Ablation: elasticity policies vs static compute/comm splits");
  dbench::PrintNote("workload: compute-heavy first 6s (2500 RPS matmul), I/O-heavy last 6s"
                    " (9000 RPS fetch-and-compute) on 16 cores, comm parallelism 32/core");

  constexpr int kCores = 16;
  const auto requests = MakeShiftingWorkload();

  dbench::Table table({"configuration", "p99 compute app [ms]", "p99 I/O app [ms]",
                       "p99 overall [ms]"});

  auto run = [&](const std::string& label, bool controller, dpolicy::PolicyKind policy,
                 int comm_cores) {
    dsim::DandelionSimConfig config;
    config.cores = kCores;
    config.sandbox_us = Calibration::kDandelionKvmX86Us;
    config.enable_controller = controller;
    config.controller_policy = policy;
    config.initial_comm_cores = comm_cores;
    config.comm_parallelism = 32;
    auto metrics = dsim::SimulateDandelion(config, requests);
    auto cell = [](double v) {
      return v > 5000.0 ? std::string(">5000") : dbench::Table::Num(v, 1);
    };
    const auto& per_app = metrics.per_app_latency_ms;
    table.AddRow({label,
                  cell(per_app.count(1) ? per_app.at(1).Percentile(99) : 0.0),
                  cell(per_app.count(2) ? per_app.at(2).Percentile(99) : 0.0),
                  cell(metrics.latency_ms.Percentile(99))});
  };

  for (auto kind : {dpolicy::PolicyKind::kPaperPi, dpolicy::PolicyKind::kHysteresis,
                    dpolicy::PolicyKind::kConcurrencyTarget}) {
    run(dbase::StrFormat("policy: %s (dynamic)", std::string(dpolicy::PolicyKindName(kind)).c_str()),
        true, kind, 1);
  }
  for (int comm : {1, 2, 4, 8, 12}) {
    run(dbase::StrFormat("static: %d comm / %d compute", comm, kCores - comm), false,
        dpolicy::PolicyKind::kPaperPi, comm);
  }
  table.Print();

  dbench::PrintNote("expected: small static comm allocations win the compute phase but drown in"
                    " the I/O phase (and vice versa); the dynamic policies track the mix —"
                    " paper-pi and hysteresis sit at or near the best column in every row, while"
                    " concurrency-target trades some I/O-phase p99 for its deliberately slow"
                    " Knative-style stable window (its burst reaction is the panic path)");

  // --- Burst recovery: hysteresis vs the paper's PI (gated) ----------------
  dbench::PrintHeader("Burst recovery: ticks until the comm allocation catches the flood");
  dbase::Micros burst_start_us = 0;
  const auto burst_requests = MakeBurstWorkload(&burst_start_us);
  // 4000 RPS x 8 ms comm = 32 concurrent; at 8 green threads per core the
  // flood needs ~4 comm cores to stop queueing — demand recovery past that.
  constexpr int kTargetComm = 4;

  auto recover = [&](dpolicy::PolicyKind kind) {
    dsim::DandelionSimConfig config;
    config.cores = kCores;
    config.sandbox_us = Calibration::kDandelionKvmX86Us;
    config.enable_controller = true;
    config.controller_policy = kind;
    config.initial_comm_cores = 1;
    config.comm_parallelism = 8;
    return TicksToRecover(dsim::SimulateDandelion(config, burst_requests), burst_start_us,
                          kTargetComm);
  };

  const int pi_ticks = recover(dpolicy::PolicyKind::kPaperPi);
  const int hysteresis_ticks = recover(dpolicy::PolicyKind::kHysteresis);

  dbench::Table recovery({"policy", dbase::StrFormat("ticks to %d comm cores", kTargetComm)});
  recovery.AddRow({"paper-pi", pi_ticks < 0 ? "never" : std::to_string(pi_ticks)});
  recovery.AddRow({"hysteresis", hysteresis_ticks < 0 ? "never" : std::to_string(hysteresis_ticks)});
  recovery.Print();

  // PI never recovering at all (-1) is the strongest hysteresis win, not a
  // gate failure.
  const bool gate_ok =
      hysteresis_ticks > 0 && (pi_ticks < 0 || hysteresis_ticks < pi_ticks);
  dbench::PrintNote(dbase::StrFormat(
      "gate: hysteresis must recover in strictly fewer ticks than paper-pi — %s"
      " (hysteresis moves up to 4 cores per decision; the PI loop moves one per 30 ms tick)",
      gate_ok ? "PASS" : "FAIL"));
  if (!gate_ok) {
    std::fprintf(stderr, "GATE FAILED: hysteresis=%d ticks, paper-pi=%d ticks\n",
                 hysteresis_ticks, pi_ticks);
    return 1;
  }
  return 0;
}
