// §7.4 (composition performance overhead): a microbenchmark that fetches a
// 64 KiB array and computes sum/min/max over a sample — one "phase" — swept
// from 2 to 16 phases. Dandelion pays a sandbox per compute phase (cached
// vs. uncached binary), Firecracker runs the whole chain in one (hot or
// snapshot-restored) MicroVM, Wasmtime re-instantiates per phase.
// Paper result: all linear in phases; D-KVM uncached is ~17% slower than
// FC-hot at 8 phases and ~4.6x faster than FC-cold at 16; cached vs.
// uncached differ by only ~0.5 ms at 16 phases.
#include <cstdio>
#include <vector>

#include "src/base/clock.h"
#include "src/base/stats.h"
#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/func/builtins.h"
#include "src/http/services.h"
#include "src/runtime/platform.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

namespace {

using dsim::Calibration;

// Unloaded latency: light Poisson load, report the median.
double MedianAt(const dsim::SimMetrics& metrics) { return metrics.latency_ms.Median(); }

// --- Real-runtime variant: an actual N-phase composition through the
// Platform (thread backend), fetching from a mesh service with a modelled
// 0.4 ms latency and computing ~0.15 ms per phase. Anchors the simulated
// table with executed numbers on this host.

dbase::Status MakeFetchRequest(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string ignored, ctx.SingleInput("in"));
  (void)ignored;
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kGet;
  request.target = "http://data.internal/chunk";
  ctx.EmitOutput("req", request.Serialize());
  return dbase::OkStatus();
}

dbase::Status PhaseCompute(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string response, ctx.SingleInput("in"));
  dbase::SpinFor(Calibration::kPhaseComputeUs);  // sum/min/max stand-in.
  ctx.EmitOutput("out", std::to_string(response.size()));
  return dbase::OkStatus();
}

std::string BuildChainDsl(int phases) {
  std::string dsl =
      dbase::StrFormat("composition Chain%d(v0) => v%d {\n", phases, phases);
  for (int p = 0; p < phases; ++p) {
    dsl += dbase::StrFormat(
        "  mkreq(in = all v%d) => (r%d = req);\n"
        "  HTTP(Request = each r%d) => (f%d = Response);\n"
        "  comp(in = all f%d) => (v%d = out);\n",
        p, p, p, p, p, p + 1);
  }
  dsl += "}\n";
  return dsl;
}

double MeasureRealChain(dandelion::Platform& platform, int phases, int repetitions) {
  dbase::LatencyRecorder latency;
  for (int i = 0; i < repetitions; ++i) {
    dandelion::InvocationRequest request;
    request.composition = dbase::StrFormat("Chain%d", phases);
    request.args.push_back(dfunc::DataSet{"v0", {dfunc::DataItem{"", "seed"}}});
    dbase::Stopwatch watch;
    auto result = platform.Invoke(std::move(request));
    if (!result.ok()) {
      return -1.0;
    }
    latency.Record(watch.ElapsedMillis());
  }
  return latency.Median();
}

}  // namespace

int main() {
  dbench::PrintHeader("Sec 7.4: N-phase fetch-and-compute chains, unloaded latency [ms]");

  constexpr int kCores = 8;
  const dbase::Micros duration = 3 * dbase::kMicrosPerSecond;
  const double rps = 30.0;  // Unloaded.

  // Phase body: fetch 64 KiB (~0.4 ms effective service latency) and
  // compute over a sample (~0.15 ms).
  constexpr dbase::Micros kFetchUs = 400;
  constexpr dbase::Micros kComputeUs = Calibration::kPhaseComputeUs;
  // The binary-cache miss adds a per-phase disk load (§7.4's cached vs.
  // uncached gap is ~0.5 ms over 16 phases ⇒ ~30 us per phase).
  constexpr dbase::Micros kUncachedLoadUs = 30;
  // Firecracker's guest network stack adds per-request overhead on each
  // fetch that Dandelion's cooperative comm engines do not pay.
  constexpr dbase::Micros kGuestNetUs = 150;

  dbench::Table table({"phases", "D kvm (cached)", "D kvm (uncached)", "FC hot",
                       "FC cold (snapshot)", "Wasmtime"});

  for (int phases : {2, 4, 6, 8, 12, 16}) {
    dsim::AppShape shape;
    shape.phases = phases;
    shape.compute_us = kComputeUs;
    shape.comm_us = kFetchUs;
    shape.compute_jitter = 0.0;
    const auto requests =
        dsim::PoissonStream(shape, rps, duration, 0x74 + static_cast<uint64_t>(phases));

    std::vector<std::string> row = {std::to_string(phases)};

    for (dbase::Micros extra_load : {dbase::Micros{0}, kUncachedLoadUs}) {
      dsim::DandelionSimConfig config;
      config.cores = kCores;
      config.sandbox_us = Calibration::kDandelionKvmX86Us + extra_load;
      config.enable_controller = true;
      row.push_back(dbench::Table::Num(MedianAt(dsim::SimulateDandelion(config, requests)), 2));
    }

    // Firecracker: one VM for the whole chain; guest-net overhead per fetch.
    dsim::AppShape fc_shape = shape;
    fc_shape.comm_us = kFetchUs + kGuestNetUs;
    const auto fc_requests =
        dsim::PoissonStream(fc_shape, rps, duration, 0x74F + static_cast<uint64_t>(phases));
    for (double hot : {1.0, 0.0}) {
      auto config = dsim::VmSimConfig::FirecrackerSnapshot(kCores, hot);
      row.push_back(dbench::Table::Num(MedianAt(dsim::SimulateVmPlatform(config, fc_requests)), 2));
    }

    dsim::WasmtimeSimConfig wt_config;
    wt_config.cores = kCores;
    row.push_back(dbench::Table::Num(MedianAt(dsim::SimulateWasmtime(wt_config, requests)), 2));

    table.AddRow(std::move(row));
  }
  table.Print();

  dbench::PrintNote("paper: linear growth for all systems; D-KVM uncached within ~17% of FC-hot"
                    " at 8 phases, ~4.6x faster than FC-cold at 16; cached-vs-uncached ~0.5 ms"
                    " at 16 phases");

  // --- Real runtime: the same chains actually executed on this host -------
  dbench::PrintHeader("Sec 7.4 (real runtime): executed N-phase chains, median latency [ms]");
  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = 8;
  platform_config.initial_comm_workers = 2;
  platform_config.backend = dandelion::IsolationBackend::kThread;
  dandelion::Platform platform(platform_config);
  (void)platform.RegisterFunction({.name = "mkreq", .body = MakeFetchRequest});
  (void)platform.RegisterFunction({.name = "comp", .body = PhaseCompute});
  dhttp::LatencyModel fetch_latency;
  fetch_latency.base_us = 400;  // Same 64 KiB-fetch model as the sim table.
  fetch_latency.jitter_sigma = 0.0;
  platform.mesh().Register("data.internal",
                           std::make_shared<dhttp::LambdaService>(
                               [](const dhttp::HttpRequest&, const dhttp::Uri&) {
                                 return dhttp::HttpResponse::Ok(std::string(64 * 1024, 'd'));
                               }),
                           fetch_latency);

  dbench::Table real_table({"phases", "D thread backend, executed [ms]"});
  for (int phases : {2, 4, 6, 8, 12, 16}) {
    if (!platform.RegisterCompositionDsl(BuildChainDsl(phases)).ok()) {
      continue;
    }
    (void)MeasureRealChain(platform, phases, 3);  // Warm-up.
    const double median = MeasureRealChain(platform, phases, 15);
    real_table.AddRow({std::to_string(phases), dbench::Table::Num(median, 2)});
  }
  real_table.Print();
  dbench::PrintNote("executed end-to-end through the dispatcher (mesh fetch 0.4 ms + ~0.15 ms"
                    " compute per phase, one sandbox per compute function) — growth is linear,"
                    " matching the simulated table's Dandelion column");
  return 0;
}
