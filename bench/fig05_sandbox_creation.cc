// Figure 5: tail latency (p99) vs. throughput for a 1x1 matmul with 0% hot
// requests — pure sandbox-creation elasticity — on a 4-core Morello-class
// node. Systems: Dandelion x4 backends, Firecracker (fresh), Firecracker
// with snapshots, gVisor, Spin/Wasmtime. Paper result: Dandelion's
// backends stay sub-millisecond up to ~10^4 RPS; FC-snapshot saturates
// around 120 RPS; fresh FC boots >150 ms; Wasmtime peaks ~7000 RPS.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/base/queue.h"
#include "src/base/sharded_queue.h"
#include "src/benchutil/table.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

namespace {

using dsim::Calibration;

// ------------------------------------------------------------------------
// Queue dispatch throughput (wall clock, real threads): the substrate the
// figure's elasticity depends on. Each worker thread replays the engines'
// dispatch pattern for a 16-instance fan-out: the single shared MpmcQueue
// pays one contended lock crossing per instance (the old per-instance
// path), the sharded queue lands the whole fan-out on the worker's shard
// with one PushBatch and pops it back locally (the new batched path).

constexpr size_t kFanOut = 16;

template <typename DispatchBatch>
double MeasureDispatchMtasks(int workers, DispatchBatch dispatch_batch) {
  constexpr dbase::Micros kDuration = 80 * dbase::kMicrosPerMilli;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_tasks{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      uint64_t tasks = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        dispatch_batch(static_cast<size_t>(w));
        tasks += kFanOut;
      }
      total_tasks.fetch_add(tasks, std::memory_order_relaxed);
    });
  }
  dbase::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::microseconds(kDuration));
  stop.store(true);
  for (auto& thread : threads) {
    thread.join();
  }
  const double seconds = static_cast<double>(watch.ElapsedMicros()) / 1e6;
  return static_cast<double>(total_tasks.load()) / seconds / 1e6;
}

void RunQueueThroughputSection() {
  dbench::PrintHeader(
      "Queue dispatch throughput: single shared MpmcQueue (per-instance submit) vs "
      "per-worker sharded queue (batched fan-out submit)");
  dbench::Table table({"workers", "single Mtasks/s", "sharded Mtasks/s", "speedup"});
  for (int workers : {1, 4, 8}) {
    dbase::MpmcQueue<int> single;
    const double single_mtasks = MeasureDispatchMtasks(workers, [&](size_t) {
      for (size_t i = 0; i < kFanOut; ++i) {
        single.Push(static_cast<int>(i));
      }
      for (size_t i = 0; i < kFanOut; ++i) {
        (void)single.TryPop();
      }
    });
    dbase::ShardedTaskQueue<int> sharded(static_cast<size_t>(workers));
    const double sharded_mtasks = MeasureDispatchMtasks(workers, [&](size_t shard) {
      std::vector<int> batch(kFanOut, 1);
      sharded.PushBatch(std::move(batch), shard);
      for (size_t i = 0; i < kFanOut; ++i) {
        (void)sharded.TryPopLocal(shard);
      }
    });
    table.AddRow({std::to_string(workers), dbench::Table::Num(single_mtasks, 2),
                  dbench::Table::Num(sharded_mtasks, 2),
                  dbench::Table::Num(sharded_mtasks / single_mtasks, 2) + "x"});
  }
  table.Print();
  dbench::PrintNote("16-instance fan-outs, 80 ms per cell; sharded+batched = the engine"
                    " dispatch path after this refactor (src/base/sharded_queue.h,"
                    " WorkerSet::SubmitComputeBatch)");
}

std::string RunDandelion(dbase::Micros sandbox_us, const std::vector<dsim::SimRequest>& requests,
                         int cores) {
  dsim::DandelionSimConfig config;
  config.cores = cores;
  config.sandbox_us = sandbox_us;
  config.enable_controller = true;
  const auto metrics = dsim::SimulateDandelion(config, requests);
  const double p99 = metrics.latency_ms.Percentile(99);
  return p99 > 2000.0 ? ">2000" : dbench::Table::Num(p99, 2);
}

}  // namespace

int main() {
  RunQueueThroughputSection();

  dbench::PrintHeader("Figure 5: p99 latency [ms] vs RPS, 1x1 matmul, 0% hot, 4 cores");

  constexpr int kCores = 4;
  const dbase::Micros duration = 4 * dbase::kMicrosPerSecond;

  dsim::AppShape matmul;
  matmul.compute_us = Calibration::kMatmul1x1Us;
  matmul.compute_jitter = 0.0;

  dbench::Table table({"RPS", "D cheri", "D kvm", "D process", "D rwasm", "FC", "FC snapshot",
                       "gVisor", "Wasmtime"});

  for (double rps : {25.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0, 7000.0, 10000.0}) {
    const auto requests =
        dsim::PoissonStream(matmul, rps, duration, 0xF165 + static_cast<uint64_t>(rps));
    std::vector<std::string> row = {dbench::Table::Num(rps, 0)};

    // Dandelion backends (Morello Table-1 totals as the per-request
    // sandbox cost).
    row.push_back(RunDandelion(Calibration::kDandelionCheriUs, requests, kCores));
    row.push_back(RunDandelion(Calibration::kDandelionKvmUs, requests, kCores));
    row.push_back(RunDandelion(Calibration::kDandelionProcessUs, requests, kCores));
    row.push_back(RunDandelion(Calibration::kDandelionRwasmUs, requests, kCores));

    for (auto vm_config : {dsim::VmSimConfig::FirecrackerFresh(kCores, 0.0),
                           dsim::VmSimConfig::FirecrackerSnapshot(kCores, 0.0),
                           dsim::VmSimConfig::Gvisor(kCores, 0.0)}) {
      const auto metrics = dsim::SimulateVmPlatform(vm_config, requests);
      const double p99 = metrics.latency_ms.Percentile(99);
      row.push_back(p99 > 2000.0 ? ">2000" : dbench::Table::Num(p99, 1));
    }

    dsim::WasmtimeSimConfig wt_config;
    wt_config.cores = kCores;
    const auto wt = dsim::SimulateWasmtime(wt_config, requests);
    const double wt_p99 = wt.latency_ms.Percentile(99);
    row.push_back(wt_p99 > 2000.0 ? ">2000" : dbench::Table::Num(wt_p99, 2));

    table.AddRow(std::move(row));
  }
  table.Print();

  dbench::PrintNote("paper: D-cheri <90us unloaded and ~10^4 RPS peak; FC snapshot limited to"
                    " ~120 RPS by restore work; gVisor worse than FC-snapshot; WT ~7000 RPS");
  dbench::PrintNote("Hyperlight Wasm (reported, not plotted): 9.1 ms unloaded cold start");
  return 0;
}
