// Figure 5: tail latency (p99) vs. throughput for a 1x1 matmul with 0% hot
// requests — pure sandbox-creation elasticity — on a 4-core Morello-class
// node. Systems: Dandelion x4 backends, Firecracker (fresh), Firecracker
// with snapshots, gVisor, Spin/Wasmtime. Paper result: Dandelion's
// backends stay sub-millisecond up to ~10^4 RPS; FC-snapshot saturates
// around 120 RPS; fresh FC boots >150 ms; Wasmtime peaks ~7000 RPS.
#include <cstdio>
#include <vector>

#include "src/benchutil/table.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

namespace {

using dsim::Calibration;

std::string RunDandelion(dbase::Micros sandbox_us, const std::vector<dsim::SimRequest>& requests,
                         int cores) {
  dsim::DandelionSimConfig config;
  config.cores = cores;
  config.sandbox_us = sandbox_us;
  config.enable_controller = true;
  const auto metrics = dsim::SimulateDandelion(config, requests);
  const double p99 = metrics.latency_ms.Percentile(99);
  return p99 > 2000.0 ? ">2000" : dbench::Table::Num(p99, 2);
}

}  // namespace

int main() {
  dbench::PrintHeader("Figure 5: p99 latency [ms] vs RPS, 1x1 matmul, 0% hot, 4 cores");

  constexpr int kCores = 4;
  const dbase::Micros duration = 4 * dbase::kMicrosPerSecond;

  dsim::AppShape matmul;
  matmul.compute_us = Calibration::kMatmul1x1Us;
  matmul.compute_jitter = 0.0;

  dbench::Table table({"RPS", "D cheri", "D kvm", "D process", "D rwasm", "FC", "FC snapshot",
                       "gVisor", "Wasmtime"});

  for (double rps : {25.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0, 7000.0, 10000.0}) {
    const auto requests =
        dsim::PoissonStream(matmul, rps, duration, 0xF165 + static_cast<uint64_t>(rps));
    std::vector<std::string> row = {dbench::Table::Num(rps, 0)};

    // Dandelion backends (Morello Table-1 totals as the per-request
    // sandbox cost).
    row.push_back(RunDandelion(Calibration::kDandelionCheriUs, requests, kCores));
    row.push_back(RunDandelion(Calibration::kDandelionKvmUs, requests, kCores));
    row.push_back(RunDandelion(Calibration::kDandelionProcessUs, requests, kCores));
    row.push_back(RunDandelion(Calibration::kDandelionRwasmUs, requests, kCores));

    for (auto vm_config : {dsim::VmSimConfig::FirecrackerFresh(kCores, 0.0),
                           dsim::VmSimConfig::FirecrackerSnapshot(kCores, 0.0),
                           dsim::VmSimConfig::Gvisor(kCores, 0.0)}) {
      const auto metrics = dsim::SimulateVmPlatform(vm_config, requests);
      const double p99 = metrics.latency_ms.Percentile(99);
      row.push_back(p99 > 2000.0 ? ">2000" : dbench::Table::Num(p99, 1));
    }

    dsim::WasmtimeSimConfig wt_config;
    wt_config.cores = kCores;
    const auto wt = dsim::SimulateWasmtime(wt_config, requests);
    const double wt_p99 = wt.latency_ms.Percentile(99);
    row.push_back(wt_p99 > 2000.0 ? ">2000" : dbench::Table::Num(wt_p99, 2));

    table.AddRow(std::move(row));
  }
  table.Print();

  dbench::PrintNote("paper: D-cheri <90us unloaded and ~10^4 RPS peak; FC snapshot limited to"
                    " ~120 RPS by restore work; gVisor worse than FC-snapshot; WT ~7000 RPS");
  dbench::PrintNote("Hyperlight Wasm (reported, not plotted): 9.1 ms unloaded cold start");
  return 0;
}
