// Figure 7: separating compute and communication (Dandelion) vs. running
// compositions as single hybrid functions (D-hybrid) with various
// threads-per-core (tpc) settings, for a compute-intensive workload
// (128x128 matmul) and an I/O-intensive one (fetch-and-compute).
// Paper result: the best hybrid concurrency differs per workload (tpc=1
// pinned for matmul, tpc=5 unpinned for fetch-and-compute), while
// Dandelion's split + PI controller is best for both.
#include <cstdio>
#include <vector>

#include "src/benchutil/table.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

namespace {

using dsim::Calibration;

std::string P99Cell(const dsim::SimMetrics& metrics) {
  const double p99 = metrics.latency_ms.Percentile(99);
  return p99 > 2000.0 ? ">2000" : dbench::Table::Num(p99, 2);
}

void RunWorkload(const char* title, const dsim::AppShape& shape,
                 const std::vector<double>& rps_points, uint64_t seed) {
  dbench::PrintHeader(title);
  constexpr int kCores = 16;
  const dbase::Micros duration = 4 * dbase::kMicrosPerSecond;

  dbench::Table table({"RPS", "Dandelion", "D-hybrid tpc=1,pin", "D-hybrid tpc=3",
                       "D-hybrid tpc=4", "D-hybrid tpc=5"});
  for (double rps : rps_points) {
    const auto requests =
        dsim::PoissonStream(shape, rps, duration, seed + static_cast<uint64_t>(rps));
    std::vector<std::string> row = {dbench::Table::Num(rps, 0)};

    dsim::DandelionSimConfig dandelion;
    dandelion.cores = kCores;
    dandelion.sandbox_us = Calibration::kDandelionKvmUs;
    dandelion.enable_controller = true;
    row.push_back(P99Cell(dsim::SimulateDandelion(dandelion, requests)));

    struct Hybrid {
      int tpc;
      bool pinned;
    };
    for (Hybrid hybrid : {Hybrid{1, true}, Hybrid{3, false}, Hybrid{4, false}, Hybrid{5, false}}) {
      dsim::DHybridSimConfig config;
      config.cores = kCores;
      config.threads_per_core = hybrid.tpc;
      config.pinned = hybrid.pinned;
      config.sandbox_us = Calibration::kDandelionKvmUs;
      row.push_back(P99Cell(dsim::SimulateDHybrid(config, requests)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

int main() {
  dsim::AppShape matmul;
  matmul.compute_us = Calibration::kMatmul128Us;
  matmul.compute_jitter = 0.03;
  RunWorkload("Figure 7 (top): matrix multiplication, p99 [ms] vs RPS", matmul,
              {250, 500, 1000, 1500, 2000, 2500, 3000, 3500}, 0xF17A);

  dsim::AppShape fetch;
  fetch.compute_us = Calibration::kPhaseComputeUs;
  fetch.comm_us = 4000;  // Remote fetch dominates the phase.
  fetch.compute_jitter = 0.03;
  RunWorkload("Figure 7 (bottom): fetch and compute, p99 [ms] vs RPS", fetch,
              {500, 1000, 2000, 3000, 4000, 6000, 8000, 10000, 12000}, 0xF17B);

  dbench::PrintNote("paper: matmul peaks with tpc=1 pinned, fetch-and-compute with tpc=5"
                    " unpinned; no single hybrid setting wins both, Dandelion's split does");
  return 0;
}
