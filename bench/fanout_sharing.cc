// Zero-copy fan-out sharing: an `each` fan-out of N instances over a large
// read-only `all` input. On the by-reference data plane (thread backend)
// every instance references the same refcounted payload, so the bytes
// physically copied per fan-out must stay ~flat as N grows; the marshalled
// data plane (process backend, MAP_SHARED contexts) copies the payload into
// every instance's context and grows linearly in N.
//
// Gate (enforced; non-zero exit on failure): with a 1 MiB read-only input,
// bytes copied for the whole N=64 fan-out must be <= 1.05x the N=1 cost
// plus a small fixed allowance for the per-instance ack seams. A regression
// that reintroduces per-instance input copies fails this immediately
// (copying would add ~64 MiB, four orders of magnitude over the allowance).
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/func/data.h"
#include "src/func/function.h"
#include "src/runtime/platform.h"

namespace {

using dandelion::IsolationBackend;
using dandelion::Platform;
using dandelion::PlatformConfig;
using dfunc::DataItem;
using dfunc::DataSet;
using dfunc::DataSetList;

constexpr size_t kBlobBytes = 1 << 20;  // 1 MiB read-only shared input.
// Allowance for fixed per-fan-out seam copies (tiny per-instance acks and
// their read-back). Payload framing is excluded from the byte counters, so
// this stays orders of magnitude under one blob copy.
constexpr uint64_t kGateSlackBytes = 64 * 1024;

// Reads the shared payload (proving every instance really sees it) and
// emits a tiny ack — the realistic shape for filters/validators that scan
// large inputs and produce small verdicts.
dbase::Status TouchShared(dfunc::FunctionCtx& ctx) {
  const DataSet* piece = ctx.input_set("piece");
  const DataSet* payload = ctx.input_set("payload");
  if (piece == nullptr || payload == nullptr) {
    return dbase::NotFound("missing input set");
  }
  uint64_t checksum = 0;
  for (const auto& item : payload->items) {
    const std::string_view bytes = item.data;
    if (!bytes.empty()) {
      checksum += static_cast<unsigned char>(bytes.front()) +
                  static_cast<unsigned char>(bytes.back()) + bytes.size();
    }
  }
  ctx.EmitOutput("acks", dbase::StrFormat("%llu", static_cast<unsigned long long>(checksum)));
  return dbase::OkStatus();
}

struct FanoutCost {
  uint64_t copied = 0;
  uint64_t aliased = 0;
  double millis = 0.0;
  bool ok = false;
};

// One fan-out invocation: N single-byte pieces (one instance each) plus the
// shared blob, measured as data-plane counter deltas across the Invoke.
FanoutCost MeasureFanout(Platform& platform, int n) {
  DataSetList args;
  DataSet pieces{"pieces", {}};
  for (int i = 0; i < n; ++i) {
    pieces.items.push_back(DataItem{"", std::string(1, static_cast<char>('a' + i % 26))});
  }
  args.push_back(DataSet{"blob", {DataItem{"", std::string(kBlobBytes, 'B')}}});
  args.push_back(std::move(pieces));

  const auto before = dfunc::DataPlaneStats::Get().snapshot();
  dbase::Stopwatch watch;
  auto result = platform.Invoke("Share", std::move(args));
  FanoutCost cost;
  cost.millis = watch.ElapsedMillis();
  const auto after = dfunc::DataPlaneStats::Get().snapshot();
  cost.copied = after.bytes_copied - before.bytes_copied;
  cost.aliased = after.bytes_aliased - before.bytes_aliased;
  cost.ok = result.ok() && (*result)[0].items.size() == static_cast<size_t>(n);
  return cost;
}

Platform MakePlatform(IsolationBackend backend) {
  PlatformConfig config;
  config.num_workers = 8;
  config.backend = backend;
  config.sleep_for_modeled_latency = false;
  return Platform(config);
}

bool Register(Platform& platform) {
  if (!platform.RegisterFunction({.name = "touch", .body = TouchShared}).ok()) {
    return false;
  }
  return platform
      .RegisterCompositionDsl(R"(
composition Share(blob, pieces) => acks {
  touch(piece = each pieces, payload = all blob) => (acks = acks);
}
)")
      .ok();
}

std::string Mib(uint64_t bytes) { return dbench::Table::Num(bytes / (1024.0 * 1024.0), 3); }

}  // namespace

int main() {
  dbench::PrintHeader(
      "Fan-out sharing: bytes copied per N-instance fan-out over a 1 MiB read-only input");

  Platform by_ref = MakePlatform(IsolationBackend::kThread);
  Platform marshalled = MakePlatform(IsolationBackend::kProcess);
  if (!Register(by_ref) || !Register(marshalled)) {
    std::fprintf(stderr, "registration failed\n");
    return 1;
  }
  (void)MeasureFanout(by_ref, 2);       // Warm-up (pools, lazy threads).
  (void)MeasureFanout(marshalled, 2);

  dbench::Table table({"N", "by-ref copied [MiB]", "by-ref aliased [MiB]", "by-ref [ms]",
                       "marshal copied [MiB]", "marshal [ms]"});

  uint64_t copied_n1 = 0;
  uint64_t copied_n64 = 0;
  bool all_ok = true;
  for (int n : {1, 4, 16, 64}) {
    const FanoutCost shared = MeasureFanout(by_ref, n);
    const FanoutCost copied = MeasureFanout(marshalled, n);
    all_ok = all_ok && shared.ok && copied.ok;
    if (n == 1) {
      copied_n1 = shared.copied;
    }
    if (n == 64) {
      copied_n64 = shared.copied;
    }
    table.AddRow({std::to_string(n), Mib(shared.copied), Mib(shared.aliased),
                  dbench::Table::Num(shared.millis, 2), Mib(copied.copied),
                  dbench::Table::Num(copied.millis, 2)});
  }
  table.Print();

  const uint64_t gate_limit =
      static_cast<uint64_t>(copied_n1 * 1.05) + kGateSlackBytes;
  const bool gate_ok = all_ok && copied_n64 <= gate_limit;
  dbench::PrintNote(dbase::StrFormat(
      "gate: N=64 by-ref copied %llu bytes vs limit %llu (1.05x N=1 cost %llu + %llu slack) — %s",
      static_cast<unsigned long long>(copied_n64), static_cast<unsigned long long>(gate_limit),
      static_cast<unsigned long long>(copied_n1),
      static_cast<unsigned long long>(kGateSlackBytes), gate_ok ? "PASS" : "FAIL"));
  dbench::PrintNote("by-ref (thread backend) hands one refcounted payload to all N instances;"
                    " marshal (process backend, MAP_SHARED contexts) must copy it into every"
                    " instance's context, so its copied column grows ~N x 1 MiB");
  if (!all_ok) {
    std::fprintf(stderr, "fan-out invocation failed\n");
  }
  return gate_ok ? 0 : 1;
}
