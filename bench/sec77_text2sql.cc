// §7.7: Text2SQL agentic workflow stage breakdown. The five stages of the
// paper's TAG-style pipeline run end-to-end on the real runtime; the LLM
// and database services carry the paper's measured latencies (1238 ms and
// 136 ms), and the Python-interpreter-bound compute stages (parse 221 ms /
// extract 207 ms / format 213 ms in the paper) are emulated by spinning the
// native functions up to the same stage costs.
// Paper result: ~2 s end-to-end, with LLM inference at ~61% of it.
#include <cstdio>
#include <mutex>

#include "src/apps/text2sql_app.h"
#include "src/base/clock.h"
#include "src/base/string_util.h"
#include "src/http/services.h"
#include "src/benchutil/table.h"
#include "src/runtime/platform.h"

namespace {

// Paper-measured stage times (ms).
constexpr double kPaperParseMs = 221;
constexpr double kPaperLlmMs = 1238;
constexpr double kPaperExtractMs = 207;
constexpr double kPaperDbMs = 136;
constexpr double kPaperFormatMs = 213;

struct StageTimes {
  std::mutex mu;
  double parse_ms = 0;
  double extract_ms = 0;
  double format_ms = 0;
};

// Wraps a compute function: spins up to `target_ms` (emulating the paper's
// CPython interpreter stages, §4.2) and records the measured duration.
dfunc::ComputeFunction Timed(dfunc::ComputeFunction body, double target_ms, double* slot,
                             StageTimes* times) {
  return [body = std::move(body), target_ms, slot, times](dfunc::FunctionCtx& ctx) {
    dbase::Stopwatch watch;
    dbase::Status status = body(ctx);
    const double native_ms = watch.ElapsedMillis();
    if (native_ms < target_ms) {
      dbase::SpinFor(dbase::MillisToMicros(target_ms - native_ms));
    }
    std::lock_guard<std::mutex> lock(times->mu);
    *slot = watch.ElapsedMillis();
    return status;
  };
}

}  // namespace

int main() {
  dbench::PrintHeader("Sec 7.7: Text2SQL workflow stage breakdown");

  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = 4;
  platform_config.backend = dandelion::IsolationBackend::kThread;
  dandelion::Platform platform(platform_config);

  // Install services + composition via the app, but register the compute
  // functions ourselves with timing wrappers.
  StageTimes times;
  dbase::Status status = platform.RegisterFunction(
      {.name = "ParsePrompt",
       .body = Timed(dapps::ParsePromptFunction, kPaperParseMs, &times.parse_ms, &times)});
  if (status.ok()) {
    status = platform.RegisterFunction(
        {.name = "ExtractSql",
         .body = Timed(dapps::ExtractSqlFunction, kPaperExtractMs, &times.extract_ms, &times)});
  }
  if (status.ok()) {
    status = platform.RegisterFunction(
        {.name = "FormatResult",
         .body = Timed(dapps::FormatResultFunction, kPaperFormatMs, &times.format_ms, &times)});
  }
  if (status.ok()) {
    status = platform.RegisterCompositionDsl(dapps::kText2SqlDsl);
  }
  if (status.ok()) {
    // Wire the LLM + DB services with the paper's measured latencies.
    auto llm = std::make_shared<dhttp::LlmService>("```sql\nSELECT 1;\n```");
    llm->AddCannedCompletion(
        "most populous",
        "```sql\nSELECT name FROM cities WHERE country = 'Japan' LIMIT 3\n```");
    dhttp::LatencyModel llm_latency;
    llm_latency.base_us = dbase::MillisToMicros(kPaperLlmMs);
    llm_latency.jitter_sigma = 0.02;
    platform.mesh().Register("llm.internal", llm, llm_latency);

    auto db = std::make_shared<dhttp::KeyValueDbService>();
    db->CreateTable("cities", {"name", "country", "population"});
    db->InsertRow("cities", {"Tokyo", "Japan", "37400068"});
    db->InsertRow("cities", {"Osaka", "Japan", "19281000"});
    db->InsertRow("cities", {"Nagoya", "Japan", "9507000"});
    dhttp::LatencyModel db_latency;
    db_latency.base_us = dbase::MillisToMicros(kPaperDbMs);
    db_latency.jitter_sigma = 0.02;
    platform.mesh().Register("db.internal", db, db_latency);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "setup: %s\n", status.ToString().c_str());
    return 1;
  }

  dandelion::InvocationRequest request;
  request.composition = "Text2Sql";
  request.args.push_back(dfunc::DataSet{
      "Question", {dfunc::DataItem{"", "What are the most populous cities of Japan?"}}});
  // Agentic pipelines are interactive work with a real latency budget: give
  // the invocation a deadline well above the ~2 s the paper measures.
  request.deadline_us = dandelion::InvocationRequest::DeadlineIn(30 * dbase::kMicrosPerSecond);
  request.priority = dandelion::PriorityClass::kInteractive;
  dbase::Stopwatch watch;
  auto result = platform.Invoke(std::move(request));
  const double total_ms = watch.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "invoke: %s\n", result.status().ToString().c_str());
    return 1;
  }

  const double llm_ms = kPaperLlmMs;  // Injected mesh latency.
  const double db_ms = kPaperDbMs;
  dbench::Table table({"stage", "paper [ms]", "this run [ms]", "share"});
  auto add = [&](const char* stage, double paper, double measured) {
    table.AddRow({stage, dbench::Table::Num(paper, 0), dbench::Table::Num(measured, 0),
                  dbench::Table::Num(measured / total_ms * 100.0, 0) + "%"});
  };
  add("1. parse input prompt", kPaperParseMs, times.parse_ms);
  add("2. LLM request (HTTP)", kPaperLlmMs, llm_ms);
  add("3. extract SQL from response", kPaperExtractMs, times.extract_ms);
  add("4. SQL query (HTTP)", kPaperDbMs, db_ms);
  add("5. format DB response", kPaperFormatMs, times.format_ms);
  table.AddRow({"total", dbench::Table::Num(2015, 0), dbench::Table::Num(total_ms, 0), "100%"});
  table.Print();

  const dfunc::DataSet* answer = dfunc::FindSet(*result, "Answer");
  if (answer != nullptr && !answer->items.empty()) {
    std::printf("answer:\n%s\n", answer->items.front().data.ToString().c_str());
  }
  dbench::PrintNote(dbase::StrFormat("LLM share: %.0f%% (paper: 61%%)",
                                     llm_ms / total_ms * 100.0));
  return 0;
}
