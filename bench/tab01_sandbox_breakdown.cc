// Table 1: Dandelion's sandbox-creation latency breakdown per isolation
// backend for a 1x1 int64 matmul. Two halves:
//   (a) REAL measurements of this repository's backends on this machine —
//       marshal, binary load, input transfer, execute, output readback;
//   (b) the paper's Arm Morello reference numbers for comparison.
// The cheri/rwasm/kvm rows use the calibrated stand-ins described in
// DESIGN.md; the process row is a real fork() on the critical path.
#include <cstdio>
#include <vector>

#include "src/base/clock.h"
#include "src/base/stats.h"
#include "src/benchutil/table.h"
#include "src/func/builtins.h"
#include "src/runtime/jail.h"
#include "src/runtime/memory_context.h"
#include "src/runtime/sandbox.h"

namespace {

struct Breakdown {
  double marshal_us = 0;
  double load_us = 0;
  double setup_us = 0;   // Sandbox creation proper (fork / VM enter).
  double execute_us = 0;
  double output_us = 0;
  double total_us = 0;
};

Breakdown MeasureBackend(dandelion::IsolationBackend backend, int iterations) {
  auto executor = dandelion::CreateSandboxExecutor(backend);
  dfunc::FunctionSpec spec;
  spec.name = "matmul";
  spec.body = dfunc::MatMulFunction;
  spec.binary_bytes = 64 * 1024;  // Tiny 1x1 matmul binary.
  spec.context_bytes = 1 << 20;

  // 1x1 matrices, as in the paper's table.
  dfunc::DataSetList inputs;
  inputs.push_back(dfunc::DataSet{"A", {dfunc::DataItem{"", dfunc::EncodeInt64Array({3})}}});
  inputs.push_back(dfunc::DataSet{"B", {dfunc::DataItem{"", dfunc::EncodeInt64Array({7})}}});

  dbase::OnlineStats marshal, load, setup, execute, output, total;
  for (int i = 0; i < iterations; ++i) {
    auto context = dandelion::MemoryContext::Create(
        spec.context_bytes, nullptr,
        /*shared=*/backend == dandelion::IsolationBackend::kProcess);
    if (!context.ok()) {
      continue;
    }
    dbase::Stopwatch watch;
    (void)(*context)->StoreInputSets(inputs);
    const double marshal_us = static_cast<double>(watch.ElapsedMicros());

    dandelion::ExecOutcome outcome =
        executor->Execute(spec, **context, dandelion::SandboxOptions{});
    if (!outcome.status.ok()) {
      continue;
    }
    marshal.Add(marshal_us);
    load.Add(static_cast<double>(outcome.timings.load_us));
    setup.Add(static_cast<double>(outcome.timings.setup_us));
    execute.Add(static_cast<double>(outcome.timings.execute_us));
    output.Add(static_cast<double>(outcome.timings.output_us));
    total.Add(marshal_us + static_cast<double>(outcome.timings.Total()));
  }

  Breakdown result;
  result.marshal_us = marshal.mean();
  result.load_us = load.mean();
  result.setup_us = setup.mean();
  result.execute_us = execute.mean();
  result.output_us = output.mean();
  result.total_us = total.mean();
  return result;
}

}  // namespace

int main() {
  dbench::PrintHeader("Table 1: sandbox-creation latency breakdown, 1x1 matmul [us]");

  const std::vector<dandelion::IsolationBackend> backends = {
      dandelion::IsolationBackend::kThread,
      dandelion::IsolationBackend::kWasmSim,
      dandelion::IsolationBackend::kProcess,
      dandelion::IsolationBackend::kKvmSim,
  };

  constexpr int kWarmup = 20;
  constexpr int kIterations = 300;

  dbench::Table table(
      {"row", "cheri", "rwasm", "process", "kvm"});
  std::vector<Breakdown> results;
  for (auto backend : backends) {
    (void)MeasureBackend(backend, kWarmup);
    results.push_back(MeasureBackend(backend, kIterations));
  }
  auto row = [&](const char* name, double Breakdown::* field) {
    std::vector<std::string> cells = {name};
    for (const auto& result : results) {
      cells.push_back(dbench::Table::Num(result.*field, 1));
    }
    table.AddRow(std::move(cells));
  };
  row("Marshal requests", &Breakdown::marshal_us);
  row("Load binary", &Breakdown::load_us);
  row("Create sandbox", &Breakdown::setup_us);
  row("Execute function", &Breakdown::execute_us);
  row("Get/send output", &Breakdown::output_us);
  row("Total (measured here)", &Breakdown::total_us);
  table.Print();

  dbench::Table reference({"row", "cheri", "rwasm", "process", "kvm"});
  reference.AddRow({"Paper total (Arm Morello)", "89", "241", "486", "889"});
  reference.AddRow({"Paper total (x86, Linux 5.15)", "-", "109", "539", "218"});
  reference.Print();

  dbench::PrintNote("expected ordering on any host: cheri < rwasm < process < kvm; the process"
                    " row's 'create sandbox' is a real fork()+wait on this machine");

  // Syscall-jail overhead on the process backend: identical fork()+wait
  // runs with the seccomp-BPF filter installed in the child vs bypassed.
  // The delta is the prctl(NO_NEW_PRIVS) + filter-load cost on the cold
  // path — the price of SECCOMP_RET_KILL_PROCESS containment per launch.
  dbench::PrintHeader("Table 1 addendum: seccomp jail cost, process backend [us]");
  const bool jail_available = dandelion::SandboxCapabilities::Get().seccomp_filter;
  dbench::Table jail_table({"row", "jail on", "jail off", "delta"});
  if (jail_available) {
    const bool was_enabled = dandelion::SyscallJailEnabled();
    dandelion::SetSyscallJailEnabled(true);
    (void)MeasureBackend(dandelion::IsolationBackend::kProcess, kWarmup);
    const Breakdown jailed = MeasureBackend(dandelion::IsolationBackend::kProcess, kIterations);
    dandelion::SetSyscallJailEnabled(false);
    (void)MeasureBackend(dandelion::IsolationBackend::kProcess, kWarmup);
    const Breakdown open = MeasureBackend(dandelion::IsolationBackend::kProcess, kIterations);
    dandelion::SetSyscallJailEnabled(was_enabled);
    auto jail_row = [&](const char* name, double Breakdown::* field) {
      jail_table.AddRow({name, dbench::Table::Num(jailed.*field, 1),
                         dbench::Table::Num(open.*field, 1),
                         dbench::Table::Num(jailed.*field - open.*field, 1)});
    };
    jail_row("Create sandbox", &Breakdown::setup_us);
    jail_row("Execute function", &Breakdown::execute_us);
    jail_row("Total (measured here)", &Breakdown::total_us);
  } else {
    jail_table.AddRow({"Total (measured here)", "-", "-", "-"});
  }
  jail_table.Print();
  dbench::PrintNote(jail_available
                        ? "jail on = seccomp-BPF allowlist installed post-fork in the child"
                        : "seccomp filters unavailable on this kernel: " +
                              std::string(dandelion::SandboxCapabilities::Get().detail));
  return 0;
}
