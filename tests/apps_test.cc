// Integration tests for the paper's applications running end-to-end on the
// real runtime: log processing (Fig. 3), Text2SQL (§7.7), the image
// pipeline (§7.6), and partitioned SSB query processing (§7.7/Fig. 9).
#include <gtest/gtest.h>

#include "src/apps/image_app.h"
#include "src/apps/log_app.h"
#include "src/apps/ssb_app.h"
#include "src/apps/text2sql_app.h"
#include "src/dsl/parser.h"
#include "src/http/http_parser.h"
#include "src/img/png.h"
#include "src/sql/ssb_queries.h"

namespace dapps {
namespace {

dandelion::PlatformConfig TestPlatformConfig(int workers = 4) {
  dandelion::PlatformConfig config;
  config.num_workers = workers;
  config.backend = dandelion::IsolationBackend::kThread;
  config.sleep_for_modeled_latency = false;  // Virtualize service latency.
  return config;
}

// ----------------------------------------------------------------- Log app

TEST(LogAppTest, EndToEndRendersAllShards) {
  dandelion::Platform platform(TestPlatformConfig());
  LogAppConfig config;
  config.num_shards = 3;
  config.lines_per_shard = 5;
  ASSERT_TRUE(InstallLogApp(platform, config).ok());
  auto html = RunLogApp(platform, config);
  ASSERT_TRUE(html.ok()) << html.status().ToString();
  EXPECT_NE(html->find("<html>"), std::string::npos);
  for (int s = 0; s < 3; ++s) {
    EXPECT_NE(html->find("shard" + std::to_string(s)), std::string::npos) << *html;
  }
  // 3 shard sections (instance per authorized endpoint).
  EXPECT_NE(html->find("id=\"shard-2\""), std::string::npos);
  EXPECT_EQ(html->find("id=\"shard-3\""), std::string::npos);
}

TEST(LogAppTest, BadTokenProducesEmptyRender) {
  dandelion::Platform platform(TestPlatformConfig());
  LogAppConfig config;
  ASSERT_TRUE(InstallLogApp(platform, config).ok());
  // Invoke with a wrong token: auth returns 401, FanOut forwards nothing,
  // the log-fetch HTTP node and Render are skipped (§4.4) → empty output.
  dfunc::DataSetList args;
  args.push_back(dfunc::DataSet{"AccessToken", {dfunc::DataItem{"", "wrong-token"}}});
  auto result = platform.Invoke("RenderLogs", std::move(args));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const dfunc::DataSet* html = dfunc::FindSet(*result, "HTMLOutput");
  ASSERT_NE(html, nullptr);
  EXPECT_TRUE(html->items.empty());
}

TEST(LogAppTest, DslMatchesListing2Shape) {
  auto ast = ddsl::ParseSingleComposition(kRenderLogsDsl);
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->name, "RenderLogs");
  ASSERT_EQ(ast->nodes.size(), 5u);
  EXPECT_EQ(ast->nodes[0].callee, "Access");
  EXPECT_EQ(ast->nodes[1].callee, "HTTP");
  EXPECT_EQ(ast->nodes[2].callee, "FanOut");
  EXPECT_EQ(ast->nodes[3].callee, "HTTP");
  EXPECT_EQ(ast->nodes[4].callee, "Render");
}

// ---------------------------------------------------------------- Text2SQL

TEST(Text2SqlTest, AnswersPopulationQuestion) {
  dandelion::Platform platform(TestPlatformConfig());
  Text2SqlConfig config;
  config.llm_latency_us = 100;  // Virtual-latency quick test.
  config.db_latency_us = 50;
  ASSERT_TRUE(InstallText2SqlApp(platform, config).ok());
  auto answer = RunText2Sql(platform, "What are the most populous cities of Japan?");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_NE(answer->find("Tokyo"), std::string::npos) << *answer;
  EXPECT_NE(answer->find("Osaka"), std::string::npos);
  EXPECT_NE(answer->find("Nagoya"), std::string::npos);
}

TEST(Text2SqlTest, FallbackCompletionStillAnswers) {
  dandelion::Platform platform(TestPlatformConfig());
  Text2SqlConfig config;
  config.llm_latency_us = 50;
  config.db_latency_us = 50;
  ASSERT_TRUE(InstallText2SqlApp(platform, config).ok());
  auto answer = RunText2Sql(platform, "Completely unrelated question");
  ASSERT_TRUE(answer.ok());
  EXPECT_NE(answer->find("Q: Completely unrelated question"), std::string::npos);
}

TEST(Text2SqlTest, EmptyQuestionFailsCleanly) {
  dandelion::Platform platform(TestPlatformConfig());
  Text2SqlConfig config;
  config.llm_latency_us = 50;
  config.db_latency_us = 50;
  ASSERT_TRUE(InstallText2SqlApp(platform, config).ok());
  auto answer = RunText2Sql(platform, "   ");
  EXPECT_FALSE(answer.ok());
}

TEST(Text2SqlTest, ExtractSqlParsesFences) {
  dhttp::HttpResponse llm = dhttp::HttpResponse::Ok(
      "Sure thing!\n```sql\nSELECT name FROM cities LIMIT 1\n```\nHope that helps.");
  dfunc::DataSetList inputs;
  inputs.push_back(dfunc::DataSet{"Completion", {dfunc::DataItem{"", llm.Serialize()}}});
  dfunc::FunctionCtx ctx(std::move(inputs));
  ASSERT_TRUE(ExtractSqlFunction(ctx).ok());
  auto request = dhttp::ParseRequest(ctx.outputs()[0].items[0].data);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->body, "SELECT name FROM cities LIMIT 1");
}

// --------------------------------------------------------------- Image app

TEST(ImageAppTest, TranscodesAndStores) {
  dandelion::Platform platform(TestPlatformConfig());
  ImageAppConfig config;
  config.num_images = 2;
  ASSERT_TRUE(InstallImageApp(platform, config).ok());
  auto status = RunImageApp(platform, 0);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(*status, "stored");
}

TEST(ImageAppTest, MissingImageReportsError) {
  dandelion::Platform platform(TestPlatformConfig());
  ImageAppConfig config;
  config.num_images = 1;
  ASSERT_TRUE(InstallImageApp(platform, config).ok());
  auto status = RunImageApp(platform, 99);  // No such object → 404 → compute fails.
  EXPECT_FALSE(status.ok());
}

TEST(ImageAppTest, StoredPngDecodes) {
  dandelion::Platform platform(TestPlatformConfig());
  ImageAppConfig config;
  config.num_images = 1;
  auto store_holder = std::make_shared<dhttp::ObjectStoreService>();
  ASSERT_TRUE(InstallImageApp(platform, config).ok());
  ASSERT_TRUE(RunImageApp(platform, 0).ok());
  // Fetch the stored PNG back through the mesh and verify its pixels match
  // the original QOI input.
  dhttp::HttpRequest get;
  get.method = dhttp::Method::kGet;
  get.target = "http://storage.internal/compressed/output.png";
  auto sanitized = dhttp::SanitizeRequest(get.Serialize());
  ASSERT_TRUE(sanitized.ok());
  auto result = platform.mesh().Call(*sanitized);
  ASSERT_EQ(result.response.status_code, 200);
  auto png = dimg::PngDecodeStored(result.response.body);
  ASSERT_TRUE(png.ok()) << png.status().ToString();
  EXPECT_EQ(png->width, config.image_width);
  EXPECT_EQ(png->height, config.image_height);
}

// ------------------------------------------------------------------ SSB app

class SsbAppTest : public ::testing::Test {
 protected:
  static SsbAppConfig SmallConfig() {
    SsbAppConfig config;
    config.data.lineorder_rows = 8000;
    config.data.customer_rows = 120;
    config.data.supplier_rows = 50;
    config.data.part_rows = 100;
    config.data.seed = 77;
    config.partitions = 4;
    return config;
  }
};

TEST_F(SsbAppTest, DimsBundleRoundTrip) {
  const dsql::SsbData data = dsql::GenerateSsb(SmallConfig().data);
  auto round = DeserializeDims(SerializeDims(data));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->date, data.date);
  EXPECT_EQ(round->customer, data.customer);
  EXPECT_EQ(round->supplier, data.supplier);
  EXPECT_EQ(round->part, data.part);
}

TEST_F(SsbAppTest, QueriesThroughCompositionMatchDirectExecution) {
  dandelion::Platform platform(TestPlatformConfig(6));
  const SsbAppConfig config = SmallConfig();
  auto handle = InstallSsbApp(platform, config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(handle->store->object_count(), 5u);  // 4 partitions + dims.

  const dsql::SsbData data = dsql::GenerateSsb(config.data);
  for (int query_id : dsql::SsbQueryIds()) {
    auto via_platform = RunSsbQuery(platform, *handle, query_id);
    ASSERT_TRUE(via_platform.ok())
        << "query " << query_id << ": " << via_platform.status().ToString();

    auto direct = dsql::RunQueryOnPartition(query_id, data.lineorder, data);
    ASSERT_TRUE(direct.ok());
    auto merged = dsql::MergeQueryPartials(query_id, {*direct});
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(*via_platform, merged->ToCsv()) << "query " << query_id;
  }
}

TEST_F(SsbAppTest, ParallelInstancesMatchPartitionCount) {
  dandelion::Platform platform(TestPlatformConfig(6));
  auto handle = InstallSsbApp(platform, SmallConfig());
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(RunSsbQuery(platform, *handle, 11).ok());
  // Compute instances: MakeSsbFetches + MakeDimFetch + 4×RunPartition +
  // MergePartials = 7.
  EXPECT_EQ(platform.dispatcher_stats().compute_instances, 7u);
  // Comm instances: one per partition fetch + one dim fetch = 5.
  EXPECT_EQ(platform.dispatcher_stats().comm_instances, 5u);
}

}  // namespace
}  // namespace dapps
