// Tests for the runtime: memory contexts + accounting, the four sandbox
// backends (including real process isolation and timeout preemption),
// engines with role shifting, the policy-driven control plane, and the
// dispatcher / platform running full compositions (fan-out, key grouping,
// optional sets, failure propagation, nesting). Policy decision logic
// itself is covered by tests/policy_test.cc.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>

#include "src/base/clock.h"
#include "src/http/http_parser.h"
#include "src/func/builtins.h"
#include "src/http/services.h"
#include "src/runtime/comm_function.h"
#include "src/runtime/controller.h"
#include "src/runtime/dispatcher.h"
#include "src/runtime/engine.h"
#include "src/runtime/frontend.h"
#include "src/runtime/jail.h"
#include "src/runtime/memory_context.h"
#include "src/runtime/platform.h"
#include "src/runtime/sandbox.h"

namespace dandelion {
namespace {

using dfunc::DataItem;
using dfunc::DataSet;
using dfunc::DataSetList;

// --------------------------------------------------------------- Accountant

TEST(MemoryAccountantTest, TracksCurrentAndPeak) {
  MemoryAccountant accountant;
  accountant.Acquire(100);
  accountant.Acquire(50);
  EXPECT_EQ(accountant.current_bytes(), 150u);
  EXPECT_EQ(accountant.peak_bytes(), 150u);
  accountant.Release(100);
  EXPECT_EQ(accountant.current_bytes(), 50u);
  EXPECT_EQ(accountant.peak_bytes(), 150u);
  EXPECT_EQ(accountant.total_acquired(), 150u);
}

TEST(MemoryAccountantTest, TimelineWithClock) {
  MemoryAccountant accountant;
  dbase::ManualClock clock(1000);
  accountant.AttachClock(&clock);
  accountant.Acquire(1024 * 1024);
  clock.Advance(500);
  accountant.Release(1024 * 1024);
  auto timeline = accountant.TimelineSnapshot();
  ASSERT_EQ(timeline.points().size(), 2u);
  EXPECT_EQ(timeline.points()[0].time_us, 1000);
  EXPECT_DOUBLE_EQ(timeline.points()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(timeline.points()[1].value, 0.0);
}

// ------------------------------------------------------------------ Context

TEST(MemoryContextTest, CreateAndBounds) {
  MemoryAccountant accountant;
  auto ctx = MemoryContext::Create(4096, &accountant);
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ((*ctx)->capacity(), 4096u);
  EXPECT_EQ(accountant.current_bytes(), 4096u);
  EXPECT_TRUE((*ctx)->WriteAt(0, "abcd").ok());
  EXPECT_TRUE((*ctx)->WriteAt(4092, "abcd").ok());
  EXPECT_FALSE((*ctx)->WriteAt(4093, "abcd").ok());
  EXPECT_FALSE((*ctx)->ReadAt(4096, 1).ok());
  EXPECT_EQ((*ctx)->ReadAt(0, 4).value(), "abcd");
  ctx->reset();
  EXPECT_EQ(accountant.current_bytes(), 0u);
}

TEST(MemoryContextTest, RejectsTinyCapacity) {
  EXPECT_FALSE(MemoryContext::Create(8, nullptr).ok());
}

// Private contexts recycle their mmap regions through the process-wide
// ContextPool; a reused region must be indistinguishable from a fresh
// mapping — no bytes from the previous instance may survive.
TEST(MemoryContextTest, PooledReuseReadsAsZeros) {
  // A capacity distinct from every other test's, so this test observes its
  // own recycling rather than another test's leftovers.
  constexpr uint64_t kCapacity = (1 << 20) + 3 * 4096;

  // Small touched extent: the pool zeroes it in place.
  {
    auto ctx = MemoryContext::Create(kCapacity, nullptr);
    ASSERT_TRUE(ctx.ok());
    ASSERT_TRUE((*ctx)->WriteAt(0, "secret-small").ok());
  }
  const auto after_small = ContextPool::Get()->stats();
  EXPECT_GT(after_small.recycled, 0u);
  {
    auto ctx = MemoryContext::Create(kCapacity, nullptr);
    ASSERT_TRUE(ctx.ok());
    auto view = (*ctx)->ReadAt(0, 64);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->find_first_not_of('\0'), std::string_view::npos);

    // Large touched extent (past ContextPool::kZeroExtentBytes): the pool
    // uncommits with MADV_DONTNEED instead.
    const std::string big(ContextPool::kZeroExtentBytes + 4096, 'X');
    ASSERT_TRUE((*ctx)->WriteAt(0, big).ok());
  }
  {
    auto ctx = MemoryContext::Create(kCapacity, nullptr);
    ASSERT_TRUE(ctx.ok());
    auto view = (*ctx)->ReadAt(0, ContextPool::kZeroExtentBytes + 4096);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->find_first_not_of('\0'), std::string_view::npos);
  }

  // set_max_entries(0) disables pooling and drains shelved regions.
  ContextPool::Get()->set_max_entries(0);
  {
    auto ctx = MemoryContext::Create(kCapacity, nullptr);
    ASSERT_TRUE(ctx.ok());
    ASSERT_TRUE((*ctx)->WriteAt(0, "dropped").ok());
  }
  const auto drained = ContextPool::Get()->stats();
  EXPECT_GT(drained.dropped, 0u);
  ContextPool::Get()->set_max_entries(64);
}

TEST(MemoryContextTest, TransferBetweenContexts) {
  auto a = MemoryContext::Create(4096, nullptr);
  auto b = MemoryContext::Create(4096, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->WriteAt(100, "transfer me").ok());
  ASSERT_TRUE((*b)->TransferFrom(**a, 100, 7, 11).ok());
  EXPECT_EQ((*b)->ReadAt(7, 11).value(), "transfer me");
  EXPECT_FALSE((*b)->TransferFrom(**a, 4090, 0, 100).ok());
}

TEST(MemoryContextTest, InputOutputProtocol) {
  auto ctx = MemoryContext::Create(1 << 20, nullptr);
  ASSERT_TRUE(ctx.ok());
  DataSetList inputs;
  inputs.push_back(DataSet{"in", {DataItem{"k", "v"}}});
  ASSERT_TRUE((*ctx)->StoreInputSets(inputs).ok());
  auto loaded = (*ctx)->LoadInputSets();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, inputs);

  DataSetList outputs;
  outputs.push_back(DataSet{"out", {DataItem{"", "result"}}});
  ASSERT_TRUE((*ctx)->StoreOutcome(dbase::OkStatus(), outputs).ok());
  auto read_back = (*ctx)->LoadOutputSets();
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, outputs);
}

TEST(MemoryContextTest, ErrorOutcomePropagates) {
  auto ctx = MemoryContext::Create(1 << 16, nullptr);
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE((*ctx)->StoreOutcome(dbase::NotFound("boom"), {}).ok());
  auto result = (*ctx)->LoadOutputSets();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "boom");
}

TEST(MemoryContextTest, PendingStateIsError) {
  auto ctx = MemoryContext::Create(1 << 16, nullptr);
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE((*ctx)->StoreInputSets({}).ok());
  EXPECT_FALSE((*ctx)->LoadOutputSets().ok());  // Still pending.
}

TEST(MemoryContextTest, InputsExceedingCapacityRejected) {
  auto ctx = MemoryContext::Create(1024, nullptr);
  ASSERT_TRUE(ctx.ok());
  DataSetList inputs;
  inputs.push_back(DataSet{"in", {DataItem{"", std::string(2000, 'x')}}});
  EXPECT_EQ((*ctx)->StoreInputSets(inputs).code(), dbase::StatusCode::kResourceExhausted);
}

TEST(MemoryContextTest, OversizeOutputsReportExhaustion) {
  auto ctx = MemoryContext::Create(1024, nullptr);
  ASSERT_TRUE(ctx.ok());
  DataSetList outputs;
  outputs.push_back(DataSet{"out", {DataItem{"", std::string(5000, 'x')}}});
  ASSERT_TRUE((*ctx)->StoreOutcome(dbase::OkStatus(), outputs).ok());
  auto result = (*ctx)->LoadOutputSets();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kResourceExhausted);
}

// ----------------------------------------------------------------- Sandbox

dfunc::FunctionSpec EchoSpec() {
  dfunc::FunctionSpec spec;
  spec.name = "echo";
  spec.body = dfunc::EchoFunction;
  spec.context_bytes = 1 << 20;
  return spec;
}

DataSetList EchoInputs(const std::string& payload) {
  DataSetList inputs;
  inputs.push_back(DataSet{"in", {DataItem{"key", payload}}});
  return inputs;
}

class SandboxBackendTest : public ::testing::TestWithParam<IsolationBackend> {};

TEST_P(SandboxBackendTest, ExecutesEcho) {
  const IsolationBackend backend = GetParam();
  auto executor = CreateSandboxExecutor(backend);
  ASSERT_NE(executor, nullptr);
  EXPECT_EQ(executor->backend(), backend);

  auto ctx = MemoryContext::Create(1 << 20, nullptr,
                                   /*shared=*/backend == IsolationBackend::kProcess);
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE((*ctx)->StoreInputSets(EchoInputs("hello sandbox")).ok());

  ExecOutcome outcome = executor->Execute(EchoSpec(), **ctx, SandboxOptions{});
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  ASSERT_EQ(outcome.outputs.size(), 1u);
  EXPECT_EQ(outcome.outputs[0].name, "out");
  EXPECT_EQ(outcome.outputs[0].items[0].data, "hello sandbox");
  EXPECT_GE(outcome.timings.Total(), 0);
}

TEST_P(SandboxBackendTest, FunctionErrorPropagates) {
  const IsolationBackend backend = GetParam();
  auto executor = CreateSandboxExecutor(backend);
  dfunc::FunctionSpec spec;
  spec.name = "fail";
  spec.body = dfunc::FailingFunction;
  auto ctx = MemoryContext::Create(1 << 20, nullptr,
                                   backend == IsolationBackend::kProcess);
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE((*ctx)->StoreInputSets({}).ok());
  ExecOutcome outcome = executor->Execute(spec, **ctx, SandboxOptions{});
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), dbase::StatusCode::kInternal);
}

TEST_P(SandboxBackendTest, TimeoutPreempts) {
  const IsolationBackend backend = GetParam();
  auto executor = CreateSandboxExecutor(backend);
  dfunc::FunctionSpec spec;
  spec.name = "spin";
  spec.body = dfunc::InfiniteLoopFunction;
  spec.timeout_us = 30 * dbase::kMicrosPerMilli;
  auto ctx = MemoryContext::Create(1 << 20, nullptr,
                                   backend == IsolationBackend::kProcess);
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE((*ctx)->StoreInputSets({}).ok());
  dbase::Stopwatch watch;
  ExecOutcome outcome = executor->Execute(spec, **ctx, SandboxOptions{});
  EXPECT_EQ(outcome.status.code(), dbase::StatusCode::kDeadlineExceeded)
      << outcome.status.ToString();
  EXPECT_LT(watch.ElapsedMicros(), 5 * dbase::kMicrosPerSecond);
}

INSTANTIATE_TEST_SUITE_P(Backends, SandboxBackendTest,
                         ::testing::Values(IsolationBackend::kThread,
                                           IsolationBackend::kKvmSim,
                                           IsolationBackend::kWasmSim,
                                           IsolationBackend::kProcess),
                         [](const ::testing::TestParamInfo<IsolationBackend>& param_info) {
                           return std::string(IsolationBackendName(param_info.param));
                         });

TEST(SandboxTest, ProcessIsolationSurvivesCrash) {
  // Jail bypassed: raise() is a forbidden syscall under seccomp, which
  // would turn this into a SIGSYS jail kill (covered by jail_test). This
  // test pins the plain die-by-signal decode path.
  const bool jail_was_enabled = SyscallJailEnabled();
  SetSyscallJailEnabled(false);
  auto executor = CreateSandboxExecutor(IsolationBackend::kProcess);
  dfunc::FunctionSpec spec;
  spec.name = "crasher";
  spec.body = [](dfunc::FunctionCtx&) -> dbase::Status {
    // Simulated wild write: only the child dies. SIGKILL rather than
    // SIGSEGV so sanitizer builds exercise the same die-by-signal path
    // (ASan's SEGV handler would turn the crash into a clean exit).
    raise(SIGKILL);
    return dbase::OkStatus();
  };
  auto ctx = MemoryContext::Create(1 << 20, nullptr, /*shared=*/true);
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE((*ctx)->StoreInputSets({}).ok());
  ExecOutcome outcome = executor->Execute(spec, **ctx, SandboxOptions{});
  SetSyscallJailEnabled(jail_was_enabled);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_NE(outcome.status.message().find("signal"), std::string::npos);
  EXPECT_EQ(outcome.failure, dpolicy::FailureKind::kCrash);
}

TEST(SandboxTest, ProcessRequiresSharedContext) {
  auto executor = CreateSandboxExecutor(IsolationBackend::kProcess);
  auto ctx = MemoryContext::Create(1 << 20, nullptr, /*shared=*/false);
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE((*ctx)->StoreInputSets({}).ok());
  ExecOutcome outcome = executor->Execute(EchoSpec(), **ctx, SandboxOptions{});
  EXPECT_EQ(outcome.status.code(), dbase::StatusCode::kFailedPrecondition);
}

TEST(SandboxTest, BackendNamesRoundTrip) {
  for (auto backend : {IsolationBackend::kProcess, IsolationBackend::kThread,
                       IsolationBackend::kKvmSim, IsolationBackend::kWasmSim}) {
    auto parsed = IsolationBackendFromName(IsolationBackendName(backend));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(IsolationBackendFromName("firecracker").ok());
}

TEST(SandboxTest, UncachedBinaryLoadsSlower) {
  BackendCostModel costs = BackendCostModel::Defaults(IsolationBackend::kThread);
  costs.load_disk_us_per_mb = 4000.0;
  costs.load_cached_us_per_mb = 10.0;
  auto executor = CreateSandboxExecutor(IsolationBackend::kThread, costs);
  dfunc::FunctionSpec spec = EchoSpec();
  spec.binary_bytes = 4 << 20;

  auto run = [&](bool cached) {
    auto ctx = MemoryContext::Create(1 << 20, nullptr);
    EXPECT_TRUE(ctx.ok());
    EXPECT_TRUE((*ctx)->StoreInputSets(EchoInputs("x")).ok());
    SandboxOptions options;
    options.binary_cached = cached;
    return executor->Execute(spec, **ctx, options).timings.load_us;
  };
  EXPECT_GT(run(false), run(true) * 3);
}

// ----------------------------------------------------------------- Engines

class WorkerSetTest : public ::testing::Test {
 protected:
  WorkerSetTest() {
    mesh_.Register("echo.internal", std::make_shared<dhttp::EchoService>(),
                   dhttp::LatencyModel{.base_us = 100, .per_kb_us = 0.0, .jitter_sigma = 0.0});
    WorkerSet::Config config;
    config.num_workers = 3;
    config.initial_comm_workers = 1;
    config.backend = IsolationBackend::kThread;
    workers_ = std::make_unique<WorkerSet>(config, &mesh_);
    workers_->set_sleep_for_modeled_latency(false);
  }

  dhttp::ServiceMesh mesh_;
  std::unique_ptr<WorkerSet> workers_;
};

TEST_F(WorkerSetTest, RunsComputeTask) {
  auto ctx_result = MemoryContext::Create(1 << 20, nullptr);
  ASSERT_TRUE(ctx_result.ok());
  std::shared_ptr<MemoryContext> ctx = std::move(ctx_result).value();
  ASSERT_TRUE(ctx->StoreInputSets(EchoInputs("task")).ok());

  dbase::Latch latch(1);
  ExecOutcome outcome;
  ComputeTask task;
  task.spec = EchoSpec();
  task.context = ctx;
  task.done = [&](ExecOutcome result) {
    outcome = std::move(result);
    latch.CountDown();
  };
  ASSERT_TRUE(workers_->SubmitCompute(std::move(task)));
  ASSERT_TRUE(latch.WaitFor(5 * dbase::kMicrosPerSecond));
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.outputs[0].items[0].data, "task");
  EXPECT_GE(workers_->Stats().compute_tasks, 1u);
}

TEST_F(WorkerSetTest, RunsCommTask) {
  dhttp::HttpRequest req;
  req.method = dhttp::Method::kPost;
  req.target = "http://echo.internal/";
  req.body = "ping";

  dbase::Latch latch(1);
  dhttp::HttpResponse response;
  CommTask task;
  task.raw_request = req.Serialize();
  task.done = [&](dhttp::HttpResponse resp, dbase::Micros) {
    response = std::move(resp);
    latch.CountDown();
  };
  ASSERT_TRUE(workers_->SubmitComm(std::move(task)));
  ASSERT_TRUE(latch.WaitFor(5 * dbase::kMicrosPerSecond));
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, "ping");
}

TEST_F(WorkerSetTest, MalformedCommRequestBecomes400) {
  dbase::Latch latch(1);
  dhttp::HttpResponse response;
  CommTask task;
  task.raw_request = "garbage";
  task.done = [&](dhttp::HttpResponse resp, dbase::Micros) {
    response = std::move(resp);
    latch.CountDown();
  };
  ASSERT_TRUE(workers_->SubmitComm(std::move(task)));
  ASSERT_TRUE(latch.WaitFor(5 * dbase::kMicrosPerSecond));
  EXPECT_EQ(response.status_code, 400);
}

TEST_F(WorkerSetTest, RoleShifting) {
  EXPECT_EQ(workers_->compute_workers(), 2);
  EXPECT_EQ(workers_->comm_workers(), 1);
  EXPECT_TRUE(workers_->ShiftWorkerToComm());
  EXPECT_EQ(workers_->comm_workers(), 2);
  EXPECT_FALSE(workers_->ShiftWorkerToComm());  // Min 1 compute worker.
  EXPECT_TRUE(workers_->ShiftWorkerToCompute());
  EXPECT_EQ(workers_->comm_workers(), 1);
  EXPECT_FALSE(workers_->ShiftWorkerToCompute());  // Min 1 comm worker.
}

TEST_F(WorkerSetTest, SubmitAfterShutdownFails) {
  workers_->Shutdown();
  EXPECT_FALSE(workers_->SubmitCompute(ComputeTask{}));
  EXPECT_FALSE(workers_->SubmitComputeBatch({ComputeTask{}}));
  EXPECT_FALSE(workers_->SubmitComm(CommTask{}));
}

TEST_F(WorkerSetTest, BatchSubmitRunsEveryTask) {
  // 48 tasks crosses the chunking threshold (16 per chunk, 2 compute
  // workers), so this also exercises the split-across-shards path.
  constexpr int kTasks = 48;
  dbase::Latch latch(kTasks);
  std::atomic<int> completed{0};
  std::vector<ComputeTask> batch;
  for (int i = 0; i < kTasks; ++i) {
    auto ctx_result = MemoryContext::Create(1 << 16, nullptr);
    ASSERT_TRUE(ctx_result.ok());
    std::shared_ptr<MemoryContext> ctx = std::move(ctx_result).value();
    ASSERT_TRUE(ctx->StoreInputSets(EchoInputs("b" + std::to_string(i))).ok());
    ComputeTask task;
    task.spec = EchoSpec();
    task.context = ctx;
    task.done = [&](ExecOutcome outcome) {
      if (outcome.status.ok()) {
        completed.fetch_add(1);
      }
      latch.CountDown();
    };
    batch.push_back(std::move(task));
  }
  ASSERT_TRUE(workers_->SubmitComputeBatch(std::move(batch)));
  ASSERT_TRUE(latch.WaitFor(10 * dbase::kMicrosPerSecond));
  EXPECT_EQ(completed.load(), kTasks);
  // The whole batch was one arrival burst; counters must balance.
  EXPECT_EQ(workers_->compute_pushed(), static_cast<uint64_t>(kTasks));
  EXPECT_EQ(workers_->compute_popped(), static_cast<uint64_t>(kTasks));
}

TEST_F(WorkerSetTest, StatsExposeShardDepthsAndSteals) {
  const EngineStats stats = workers_->Stats();
  ASSERT_EQ(stats.compute_shard_depths.size(), 3u);  // One shard per worker.
  ASSERT_EQ(stats.comm_shard_depths.size(), 3u);
  uint64_t total = 0;
  for (uint64_t depth : stats.compute_shard_depths) {
    total += depth;
  }
  EXPECT_EQ(total, stats.compute_queue_len);  // Aggregate = sum of shards.
}

TEST_F(WorkerSetTest, RoleShiftWithBackloggedShardLosesNoTask) {
  // Flood the compute side so every compute shard has residue, then shift a
  // compute worker to comm while the backlog is live: the departed shard's
  // tasks must be re-homed or stolen, never stranded.
  constexpr int kTasks = 64;
  dbase::Latch latch(kTasks);
  std::atomic<int> completed{0};
  for (int i = 0; i < kTasks; ++i) {
    auto ctx_result = MemoryContext::Create(1 << 16, nullptr);
    ASSERT_TRUE(ctx_result.ok());
    std::shared_ptr<MemoryContext> ctx = std::move(ctx_result).value();
    ASSERT_TRUE(ctx->StoreInputSets(EchoInputs("x")).ok());
    ComputeTask task;
    task.spec = EchoSpec();
    task.spec.body = [](dfunc::FunctionCtx& fctx) {
      dbase::SpinFor(500);
      return dfunc::EchoFunction(fctx);
    };
    task.context = ctx;
    task.done = [&](ExecOutcome outcome) {
      if (outcome.status.ok()) {
        completed.fetch_add(1);
      }
      latch.CountDown();
    };
    ASSERT_TRUE(workers_->SubmitCompute(std::move(task)));
  }
  ASSERT_TRUE(workers_->ShiftWorkerToComm());  // 2 compute → 1, mid-backlog.
  EXPECT_EQ(workers_->compute_workers(), 1);
  ASSERT_TRUE(latch.WaitFor(30 * dbase::kMicrosPerSecond));
  EXPECT_EQ(completed.load(), kTasks);
  EXPECT_EQ(workers_->compute_pushed(), static_cast<uint64_t>(kTasks));
  EXPECT_EQ(workers_->compute_popped(), static_cast<uint64_t>(kTasks));
}

// -------------------------------------------------------------- Controller

TEST(ControlPlaneTest, ShiftsTowardBusyQueue) {
  dhttp::ServiceMesh mesh;
  WorkerSet::Config config;
  config.num_workers = 4;
  config.initial_comm_workers = 2;
  WorkerSet workers(config, &mesh);
  workers.set_sleep_for_modeled_latency(false);

  dpolicy::PaperPiPolicy::Options pi_options;
  pi_options.gains.kp = 1.0;
  pi_options.gains.ki = 0.0;
  ControlPlane control(&workers, std::make_unique<dpolicy::PaperPiPolicy>(pi_options),
                       ControlPlane::Config{});

  // Flood the compute queue with slow tasks so its growth dominates.
  dbase::Latch latch(64);
  for (int i = 0; i < 64; ++i) {
    auto ctx_result = MemoryContext::Create(1 << 16, nullptr);
    ASSERT_TRUE(ctx_result.ok());
    std::shared_ptr<MemoryContext> ctx = std::move(ctx_result).value();
    ASSERT_TRUE(ctx->StoreInputSets(EchoInputs("x")).ok());
    ComputeTask task;
    task.spec = EchoSpec();
    task.spec.body = [](dfunc::FunctionCtx& fctx) {
      dbase::SpinFor(2000);
      return dfunc::EchoFunction(fctx);
    };
    task.context = ctx;
    task.done = [&](ExecOutcome) { latch.CountDown(); };
    ASSERT_TRUE(workers.SubmitCompute(std::move(task)));
  }
  auto decision = control.StepOnce();
  EXPECT_GT(decision.signals.compute_growth - decision.signals.comm_growth, 0.0);
  EXPECT_EQ(decision.shifted, 1);
  EXPECT_EQ(workers.comm_workers(), 1);  // Shifted 2 → 1.
  EXPECT_EQ(control.History().size(), 1u);
  EXPECT_EQ(control.GetSummary().shifts_toward_compute, 1u);
  latch.Wait();
}

TEST(ControlPlaneTest, HistoryIsBoundedRingBuffer) {
  dhttp::ServiceMesh mesh;
  WorkerSet::Config config;
  config.num_workers = 2;
  WorkerSet workers(config, &mesh);
  workers.set_sleep_for_modeled_latency(false);

  ControlPlane::Config cp_config;
  cp_config.history_limit = 8;
  ControlPlane control(&workers, dpolicy::CreatePolicy(dpolicy::PolicyKind::kPaperPi),
                       cp_config);
  for (int i = 0; i < 50; ++i) {
    control.StepOnce();
  }
  const auto history = control.History();
  EXPECT_EQ(history.size(), 8u);  // Oldest decisions evicted.
  EXPECT_EQ(control.GetSummary().decisions, 50u);
  // The retained entries are the most recent ones (time non-decreasing,
  // last entry == the summary's last decision).
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i].time_us, history[i - 1].time_us);
  }
  EXPECT_EQ(control.GetSummary().last.time_us, history.back().time_us);
}

// ------------------------------------------------- Dispatcher / Platform

PlatformConfig FastPlatformConfig(IsolationBackend backend = IsolationBackend::kThread) {
  PlatformConfig config;
  config.num_workers = 4;
  config.backend = backend;
  config.sleep_for_modeled_latency = false;
  return config;
}

DataSetList SingleArg(const std::string& param, const std::string& value) {
  DataSetList args;
  args.push_back(DataSet{param, {DataItem{"", value}}});
  return args;
}

TEST(PlatformTest, SingleFunctionComposition) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Id(in) => out { echo(in = all in) => (out = out); }")
                  .ok());
  auto result = platform.Invoke("Id", SingleArg("in", "ping"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].name, "out");
  EXPECT_EQ((*result)[0].items[0].data, "ping");
}

TEST(PlatformTest, MatMulComposition) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(dfunc::RegisterBuiltins(
                  const_cast<dfunc::FunctionRegistry&>(platform.functions()))
                  .ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition MM(A, B) => C { matmul(A = all A, B = all B) => (C = C); }")
                  .ok());
  const int n = 16;
  const auto a = dfunc::MakeMatrix(n, 3);
  const auto b = dfunc::MakeMatrix(n, 4);
  DataSetList args;
  args.push_back(DataSet{"A", {DataItem{"", dfunc::EncodeInt64Array(a)}}});
  args.push_back(DataSet{"B", {DataItem{"", dfunc::EncodeInt64Array(b)}}});
  auto result = platform.Invoke("MM", std::move(args));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(dfunc::DecodeInt64Array((*result)[0].items[0].data).value(),
            dfunc::MultiplyMatrices(a, b, n));
}

// Splitter emits one item per byte; used for fan-out tests.
dbase::Status SplitBytes(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string payload, ctx.SingleInput("in"));
  for (char c : payload) {
    ctx.EmitOutput("parts", std::string(1, c), std::string(1, c));
  }
  return dbase::OkStatus();
}

// Tags each instance's input with a prefix (observes instance granularity).
dbase::Status TagInstance(dfunc::FunctionCtx& ctx) {
  const dfunc::DataSet* in = ctx.input_set("piece");
  if (in == nullptr) {
    return dbase::NotFound("no piece");
  }
  std::string joined;
  for (const auto& item : in->items) {
    joined += item.data;
  }
  ctx.EmitOutput("tagged", "[" + joined + "]");
  return dbase::OkStatus();
}

TEST(PlatformTest, EachFanOutRunsOneInstancePerItem) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "split", .body = SplitBytes}).ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "tag", .body = TagInstance}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Fan(in) => out {
  split(in = all in) => (pieces = parts);
  tag(piece = each pieces) => (out = tagged);
}
)")
                  .ok());
  auto result = platform.Invoke("Fan", SingleArg("in", "abc"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)[0].items.size(), 3u);
  EXPECT_EQ((*result)[0].items[0].data, "[a]");
  EXPECT_EQ((*result)[0].items[2].data, "[c]");
  EXPECT_EQ(platform.dispatcher_stats().compute_instances, 4u);  // 1 + 3.
}

TEST(PlatformTest, KeyGroupingGroupsByItemKey) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "split", .body = SplitBytes}).ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "tag", .body = TagInstance}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Group(in) => out {
  split(in = all in) => (pieces = parts);
  tag(piece = key pieces) => (out = tagged);
}
)")
                  .ok());
  // "abca" → keys a (x2), b, c → 3 instances, deterministic key order.
  auto result = platform.Invoke("Group", SingleArg("in", "abca"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)[0].items.size(), 3u);
  EXPECT_EQ((*result)[0].items[0].data, "[aa]");
  EXPECT_EQ((*result)[0].items[1].data, "[b]");
  EXPECT_EQ((*result)[0].items[2].data, "[c]");
}

TEST(PlatformTest, EmptyFanOutYieldsEmptyResult) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "split", .body = SplitBytes}).ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "tag", .body = TagInstance}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Fan(in) => out {
  split(in = all in) => (pieces = parts);
  tag(piece = each pieces) => (out = tagged);
}
)")
                  .ok());
  auto result = platform.Invoke("Fan", SingleArg("in", ""));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)[0].items.empty());
}

TEST(PlatformTest, NonOptionalEmptyInputSkipsFunction) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Skip(in) => out { echo(in = all in) => (out = out); }")
                  .ok());
  DataSetList args;
  args.push_back(DataSet{"in", {}});  // Empty set → function skipped (§4.4).
  auto result = platform.Invoke("Skip", std::move(args));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)[0].items.empty());
  EXPECT_EQ(platform.dispatcher_stats().skipped_instances, 1u);
}

// Counts items in optional set "maybe"; always runs thanks to `optional`.
dbase::Status CountMaybe(dfunc::FunctionCtx& ctx) {
  const dfunc::DataSet* maybe = ctx.input_set("maybe");
  const size_t n = maybe == nullptr ? 0 : maybe->items.size();
  ctx.EmitOutput("count", std::to_string(n));
  return dbase::OkStatus();
}

TEST(PlatformTest, OptionalEmptyInputStillRuns) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "count", .body = CountMaybe}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Opt(trigger, maybe) => out {
  count(go = all trigger, maybe = all optional maybe) => (out = count);
}
)")
                  .ok());
  DataSetList args = SingleArg("trigger", "go");
  args.push_back(DataSet{"maybe", {}});
  auto result = platform.Invoke("Opt", std::move(args));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)[0].items[0].data, "0");
}

TEST(PlatformTest, ComputeFailureFailsInvocation) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "fail", .body = dfunc::FailingFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition F(in) => out { fail(in = all in) => (out = o); }")
                  .ok());
  auto result = platform.Invoke("F", SingleArg("in", "x"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kInternal);
  EXPECT_EQ(platform.dispatcher_stats().invocations_failed, 1u);
}

TEST(PlatformTest, HttpNodeTalksToMesh) {
  Platform platform(FastPlatformConfig());
  platform.mesh().Register("echo.internal", std::make_shared<dhttp::EchoService>(),
                           dhttp::LatencyModel{.base_us = 10, .per_kb_us = 0, .jitter_sigma = 0});
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Call(req) => resp {
  HTTP(Request = each req) => (responses = Response);
  echo(in = all responses) => (resp = out);
}
)")
                  .ok());
  dhttp::HttpRequest req;
  req.method = dhttp::Method::kPost;
  req.target = "http://echo.internal/";
  req.body = "payload";
  auto result = platform.Invoke("Call", SingleArg("req", req.Serialize()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto response = dhttp::ParseResponse((*result)[0].items[0].data);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "payload");
}

TEST(PlatformTest, HttpFailureForwardedAsResponseItem) {
  Platform platform(FastPlatformConfig());  // No services registered.
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Call(req) => resp {
  HTTP(Request = each req) => (responses = Response);
  echo(in = all responses) => (resp = out);
}
)")
                  .ok());
  dhttp::HttpRequest req;
  req.target = "http://unknown.host/";
  auto result = platform.Invoke("Call", SingleArg("req", req.Serialize()));
  ASSERT_TRUE(result.ok());  // §4.4: failure forwarded, not raised.
  auto response = dhttp::ParseResponse((*result)[0].items[0].data);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 502);
}

TEST(PlatformTest, NestedComposition) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(R"(
composition Inner(in) => out { echo(in = all in) => (out = out); }
composition Outer(x) => y {
  Inner(in = all x) => (y = out);
}
)")
                  .ok());
  auto result = platform.Invoke("Outer", SingleArg("x", "nested"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)[0].items[0].data, "nested");
}

TEST(PlatformTest, UnknownCalleeFails) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition G(in) => out { Ghost(in = all in) => (out = o); }")
                  .ok());
  auto result = platform.Invoke("G", SingleArg("in", "x"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kNotFound);
}

TEST(PlatformTest, UnknownCompositionFails) {
  Platform platform(FastPlatformConfig());
  auto result = platform.Invoke("NoSuch", {});
  EXPECT_FALSE(result.ok());
}

TEST(PlatformTest, RejectsBadHttpNodeShape) {
  Platform platform(FastPlatformConfig());
  EXPECT_FALSE(platform
                   .RegisterCompositionDsl(
                       "composition H(x) => y { HTTP(Req = each x) => (y = Response); }")
                   .ok());
  EXPECT_FALSE(platform
                   .RegisterCompositionDsl(
                       "composition H(x) => y { HTTP(Request = each x) => (y = Resp); }")
                   .ok());
}

TEST(PlatformTest, RejectsReservedFunctionName) {
  Platform platform(FastPlatformConfig());
  EXPECT_FALSE(platform.RegisterFunction({.name = "HTTP", .body = dfunc::EchoFunction}).ok());
}

TEST(PlatformTest, ConcurrentInvocations) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Id(in) => out { echo(in = all in) => (out = out); }")
                  .ok());
  constexpr int kInvocations = 64;
  dbase::Latch latch(kInvocations);
  std::atomic<int> correct{0};
  for (int i = 0; i < kInvocations; ++i) {
    platform.InvokeAsync("Id", SingleArg("in", "v" + std::to_string(i)),
                         [&, i](dbase::Result<DataSetList> result) {
                           if (result.ok() &&
                               (*result)[0].items[0].data == "v" + std::to_string(i)) {
                             correct.fetch_add(1);
                           }
                           latch.CountDown();
                         });
  }
  ASSERT_TRUE(latch.WaitFor(30 * dbase::kMicrosPerSecond));
  EXPECT_EQ(correct.load(), kInvocations);
  EXPECT_EQ(platform.dispatcher_stats().invocations_completed,
            static_cast<uint64_t>(kInvocations));
}

TEST(PlatformTest, ProcessBackendEndToEnd) {
  Platform platform(FastPlatformConfig(IsolationBackend::kProcess));
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Id(in) => out { echo(in = all in) => (out = out); }")
                  .ok());
  auto result = platform.Invoke("Id", SingleArg("in", "forked"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)[0].items[0].data, "forked");
}

TEST(PlatformTest, MemoryReleasedAfterInvocation) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Id(in) => out { echo(in = all in) => (out = out); }")
                  .ok());
  ASSERT_TRUE(platform.Invoke("Id", SingleArg("in", "x")).ok());
  // The invocation callback fires from inside the engine's task completion;
  // the context itself is released moments later when the task object is
  // destroyed — poll briefly.
  const dbase::Micros deadline = dbase::MonotonicClock::Get()->NowMicros() + 2000000;
  while (platform.accountant().current_bytes() != 0 &&
         dbase::MonotonicClock::Get()->NowMicros() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(platform.accountant().current_bytes(), 0u);
  EXPECT_GT(platform.accountant().total_acquired(), 0u);
}

// ----------------------------------------------- Communication functions

TEST(CommRegistryTest, HttpPreRegistered) {
  CommFunctionRegistry registry;
  EXPECT_TRUE(registry.Contains(kHttpFunctionName));
  auto spec = registry.Lookup(kHttpFunctionName);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->request_set, kHttpRequestSet);
  EXPECT_EQ(spec->response_set, kHttpResponseSet);
}

TEST(CommRegistryTest, RegistrationRules) {
  CommFunctionRegistry registry;
  CommFunctionSpec spec;
  spec.name = "GRPC";
  spec.handler = [](dhttp::ServiceMesh&, std::string_view) { return CommCallResult{}; };
  EXPECT_TRUE(registry.Register(spec).ok());
  EXPECT_FALSE(registry.Register(spec).ok());  // Duplicate.
  CommFunctionSpec no_handler;
  no_handler.name = "X";
  EXPECT_FALSE(registry.Register(no_handler).ok());
  CommFunctionSpec no_name;
  no_name.handler = spec.handler;
  no_name.name = "";
  EXPECT_FALSE(registry.Register(no_name).ok());
  EXPECT_EQ(registry.Names().size(), 2u);  // HTTP + GRPC.
}

TEST(PlatformTest, CustomCommFunctionRunsInComposition) {
  Platform platform(FastPlatformConfig());
  // A toy "REVERSE" protocol: trusted code that reverses the request bytes.
  CommFunctionSpec reverse;
  reverse.name = "REVERSE";
  reverse.request_set = "Request";
  reverse.response_set = "Response";
  reverse.handler = [](dhttp::ServiceMesh&, std::string_view raw) {
    CommCallResult result;
    std::string body(raw.rbegin(), raw.rend());
    result.response = dhttp::HttpResponse::Ok(std::move(body));
    result.latency_us = 10;
    return result;
  };
  ASSERT_TRUE(platform.RegisterCommFunction(std::move(reverse)).ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Rev(req) => resp {
  REVERSE(Request = each req) => (responses = Response);
  echo(in = all responses) => (resp = out);
}
)")
                  .ok());
  auto result = platform.Invoke("Rev", SingleArg("req", "abc"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto response = dhttp::ParseResponse((*result)[0].items[0].data);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "cba");
}

TEST(PlatformTest, CommFunctionNameCollisions) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "taken", .body = dfunc::EchoFunction}).ok());
  CommFunctionSpec clash;
  clash.name = "taken";
  clash.handler = [](dhttp::ServiceMesh&, std::string_view) { return CommCallResult{}; };
  EXPECT_FALSE(platform.RegisterCommFunction(clash).ok());

  CommFunctionSpec fine = clash;
  fine.name = "FTP";
  ASSERT_TRUE(platform.RegisterCommFunction(fine).ok());
  EXPECT_FALSE(platform.RegisterFunction({.name = "FTP", .body = dfunc::EchoFunction}).ok());
}

TEST(PlatformTest, CustomCommNodeShapeValidated) {
  Platform platform(FastPlatformConfig());
  CommFunctionSpec spec;
  spec.name = "PIPE";
  spec.request_set = "In";
  spec.response_set = "Out";
  spec.handler = [](dhttp::ServiceMesh&, std::string_view) { return CommCallResult{}; };
  ASSERT_TRUE(platform.RegisterCommFunction(std::move(spec)).ok());
  // Wrong set names rejected at registration.
  EXPECT_FALSE(platform
                   .RegisterCompositionDsl(
                       "composition P(x) => y { PIPE(Request = each x) => (y = Out); }")
                   .ok());
  EXPECT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition P(x) => y { PIPE(In = each x) => (y = Out); }")
                  .ok());
}

// -------------------------------------------------- Dispatcher edge cases

// Joins two input sets into one item "left|right".
dbase::Status JoinPair(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string left, ctx.SingleInput("left"));
  ASSIGN_OR_RETURN(std::string right, ctx.SingleInput("right"));
  ctx.EmitOutput("joined", left + "|" + right);
  return dbase::OkStatus();
}

// Produces two output sets from one input.
dbase::Status SplitCase(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string in, ctx.SingleInput("in"));
  std::string upper = in;
  std::string lower = in;
  for (char& c : upper) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  ctx.EmitOutput("upper", upper);
  ctx.EmitOutput("lower", lower);
  return dbase::OkStatus();
}

TEST(PlatformTest, DiamondDagJoinsBothBranches) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "splitcase", .body = SplitCase}).ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "join", .body = JoinPair}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Diamond(in) => out {
  splitcase(in = all in) => (ups = upper, lows = lower);
  join(left = all ups, right = all lows) => (out = joined);
}
)")
                  .ok());
  auto result = platform.Invoke("Diamond", SingleArg("in", "MiXeD"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)[0].items[0].data, "MIXED|mixed");
}

TEST(PlatformTest, ValueConsumedByTwoNodes) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "join", .body = JoinPair}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Share(in) => out {
  echo(in = all in) => (a = out);
  echo2(in = all in) => (b = out);
  join(left = all a, right = all b) => (out = joined);
}
)")
                  .ok());
  // "echo2" is not registered: expect failure naming the callee.
  auto bad = platform.Invoke("Share", SingleArg("in", "x"));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("echo2"), std::string::npos);
}

TEST(PlatformTest, MultipleResults) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "splitcase", .body = SplitCase}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Both(in) => up, down {
  splitcase(in = all in) => (up = upper, down = lower);
}
)")
                  .ok());
  auto result = platform.Invoke("Both", SingleArg("in", "AbC"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].name, "up");
  EXPECT_EQ((*result)[0].items[0].data, "ABC");
  EXPECT_EQ((*result)[1].name, "down");
  EXPECT_EQ((*result)[1].items[0].data, "abc");
}

TEST(PlatformTest, NestingDepthLimited) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  // Mutually recursive compositions: A invokes B invokes A — must hit the
  // depth bound instead of spinning forever. Registration order requires
  // both to exist before invoke; each references the other by name only.
  ASSERT_TRUE(platform.RegisterCompositionDsl(R"(
composition A(in) => out { B(in = all in) => (out = out); }
composition B(in) => out { A(in = all in) => (out = out); }
)")
                  .ok());
  auto result = platform.Invoke("A", SingleArg("in", "x"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kResourceExhausted);
}

TEST(PlatformTest, NestedCompositionCompletingSynchronously) {
  // Regression test: a nested composition whose inner node is skipped by
  // conditional execution completes synchronously, re-entering the parent
  // invocation from the same call stack — this must not deadlock.
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(R"(
composition Inner(in) => out { echo(in = all in) => (out = out); }
composition Outer(x) => y { Inner(in = all optional x) => (y = out); }
)")
                  .ok());
  DataSetList args;
  args.push_back(DataSet{"x", {}});  // Empty: Inner's echo skips instantly.
  auto result = platform.Invoke("Outer", std::move(args));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE((*result)[0].items.empty());
}

TEST(PlatformTest, FanOutOverNestedComposition) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "split", .body = SplitBytes}).ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "tag", .body = TagInstance}).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(R"(
composition Wrap(piece) => out { tag(piece = all piece) => (out = tagged); }
composition FanNested(in) => out {
  split(in = all in) => (pieces = parts);
  Wrap(piece = each pieces) => (out = out);
}
)")
                  .ok());
  auto result = platform.Invoke("FanNested", SingleArg("in", "xy"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)[0].items.size(), 2u);
  EXPECT_EQ((*result)[0].items[0].data, "[x]");
  EXPECT_EQ((*result)[0].items[1].data, "[y]");
}

// A compute function using the dlibc filesystem view end to end.
dbase::Status FsConcat(dfunc::FunctionCtx& ctx) {
  auto& fs = ctx.fs();
  ASSIGN_OR_RETURN(auto names, fs.ListDir("/in/docs"));
  std::string all;
  for (const auto& name : names) {
    ASSIGN_OR_RETURN(std::string content, fs.ReadFile("/in/docs/" + name));
    all += content;
    all += ';';
  }
  RETURN_IF_ERROR(fs.Mkdir("/out/merged", /*recursive=*/true));
  RETURN_IF_ERROR(fs.WriteFile("/out/merged/result", all));
  return dbase::OkStatus();
}

TEST(PlatformTest, FilesystemViewFunctionEndToEnd) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "fsconcat", .body = FsConcat}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Cat(docs) => out { fsconcat(docs = all docs) => (out = "
                      "merged); }")
                  .ok());
  DataSetList args;
  args.push_back(DataSet{"docs", {DataItem{"b", "second"}, DataItem{"a", "first"}}});
  auto result = platform.Invoke("Cat", std::move(args));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)[0].items.size(), 1u);
  // ListDir is sorted, so "a" comes before "b".
  EXPECT_EQ((*result)[0].items[0].data, "first;second;");
  EXPECT_EQ((*result)[0].items[0].key, "result");
}

// ---------------------------------------------------------------- Frontend

TEST(FrontendTest, InvokeOverLoopback) {
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Id(in) => out { echo(in = all in) => (out = out); }")
                  .ok());
  HttpFrontend frontend(&platform, 0);
  auto started = frontend.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }

  // Plain TCP client.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(frontend.port());
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  dhttp::HttpRequest req;
  req.method = dhttp::Method::kPost;
  req.target = "/invoke/Id";
  req.headers.Add("X-Dandelion-Raw", "1");
  req.body = "over the wire";
  const std::string wire = req.Serialize();
  ASSERT_EQ(write(fd, wire.data(), wire.size()), static_cast<ssize_t>(wire.size()));

  std::string response_wire;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response_wire.append(buf, static_cast<size_t>(n));
    if (response_wire.find("\r\n\r\n") != std::string::npos &&
        response_wire.size() > response_wire.find("\r\n\r\n") + 4) {
      break;
    }
  }
  close(fd);

  auto response = dhttp::ParseResponse(response_wire);
  ASSERT_TRUE(response.ok()) << response_wire;
  EXPECT_EQ(response->status_code, 200);
  auto sets = dfunc::UnmarshalSets(response->body);
  ASSERT_TRUE(sets.ok());
  EXPECT_EQ((*sets)[0].items[0].data, "over the wire");
  frontend.Stop();
}

TEST(FrontendTest, HostileContentLengthRejected) {
  Platform platform(FastPlatformConfig());
  HttpFrontend frontend(&platform, 0);
  auto started = frontend.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }

  // Hostile Content-Length values, answered from the header alone instead
  // of buffering gigabytes of body: huge-but-parseable gets 413, while an
  // unparseable value (garbage, or past 2^64) fails closed with 400 per
  // RFC 9110 §8.6 — an ignored parse failure would default the length to 0
  // and sail past the cap.
  struct Case {
    const char* content_length;
    int expected_status;
  };
  for (const Case c : {Case{"99999999999", 413}, Case{"18446744073709551616", 400},
                       Case{"abc", 400}}) {
    const char* hostile_length = c.content_length;
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(frontend.port());
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

    const std::string wire = std::string("POST /invoke/Id HTTP/1.1\r\nContent-Length: ") +
                             hostile_length + "\r\n\r\n";
    ASSERT_EQ(write(fd, wire.data(), wire.size()), static_cast<ssize_t>(wire.size()));

    std::string response_wire;
    char buf[4096];
    ssize_t n;
    while ((n = read(fd, buf, sizeof(buf))) > 0) {
      response_wire.append(buf, static_cast<size_t>(n));
    }
    close(fd);

    auto response = dhttp::ParseResponse(response_wire);
    ASSERT_TRUE(response.ok()) << response_wire;
    EXPECT_EQ(response->status_code, c.expected_status) << hostile_length;
  }
  frontend.Stop();
}

}  // namespace
}  // namespace dandelion
