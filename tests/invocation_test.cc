// Tests for the first-class invocation API: cancel-before-start launches
// zero instances, cancel mid-fan-out stops the remaining instances,
// deadlines terminate invocations (including ones parked on slow
// communication calls, via the reaper), the blocking Invoke wrapper is
// deadline-aware instead of hanging forever, and interactive work
// overtakes batch backlog in the engine queues.
#include "src/runtime/invocation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "src/base/clock.h"
#include "src/base/thread.h"
#include "src/dsl/parser.h"
#include "src/func/builtins.h"
#include "src/http/services.h"
#include "src/runtime/dispatcher.h"
#include "src/runtime/platform.h"

namespace dandelion {
namespace {

using dfunc::DataItem;
using dfunc::DataSet;
using dfunc::DataSetList;

PlatformConfig SmallPlatformConfig(int workers = 2) {
  PlatformConfig config;
  config.num_workers = workers;  // workers=2 → exactly one compute worker.
  config.backend = IsolationBackend::kThread;
  config.sleep_for_modeled_latency = false;
  return config;
}

DataSetList SingleArg(const std::string& param, const std::string& value) {
  DataSetList args;
  args.push_back(DataSet{param, {DataItem{"", value}}});
  return args;
}

DataSetList ManyItems(const std::string& param, int count) {
  DataSet set;
  set.name = param;
  for (int i = 0; i < count; ++i) {
    set.items.push_back(DataItem{"", "item" + std::to_string(i)});
  }
  DataSetList args;
  args.push_back(std::move(set));
  return args;
}

// Spins until released or cancelled (cooperative, so cancellation and
// shutdown cannot hang the engine).
dfunc::ComputeFunction BlockerBody(std::shared_ptr<std::atomic<bool>> started,
                                   std::shared_ptr<std::atomic<bool>> release) {
  return [started, release](dfunc::FunctionCtx& ctx) {
    started->store(true, std::memory_order_release);
    while (!release->load(std::memory_order_acquire) && !ctx.cancelled()) {
      std::this_thread::yield();
    }
    ctx.EmitOutput("out", "blocked");
    return dbase::OkStatus();
  };
}

TEST(InvocationTest, PriorityClassNamesRoundTrip) {
  for (auto priority : {PriorityClass::kInteractive, PriorityClass::kBatch}) {
    auto parsed = PriorityClassFromName(PriorityClassName(priority));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, priority);
  }
  EXPECT_FALSE(PriorityClassFromName("urgent").ok());
}

TEST(InvocationTest, ReportTracksLifecycle) {
  Platform platform(SmallPlatformConfig(4));
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Id(in) => out { echo(in = all in) => (out = out); }")
                  .ok());
  InvocationRequest request;
  request.composition = "Id";
  request.args = SingleArg("in", "x");
  request.priority = PriorityClass::kBatch;

  dbase::Latch latch(1);
  InvocationHandle handle = platform.Submit(std::move(request), [&](auto result) {
    EXPECT_TRUE(result.ok());
    latch.CountDown();
  });
  ASSERT_TRUE(latch.WaitFor(10 * dbase::kMicrosPerSecond));
  EXPECT_TRUE(handle.valid());
  EXPECT_GT(handle.id(), 0u);
  // MarkDone happens-before the callback, but report fields are published
  // with relaxed atomics — poll briefly.
  const dbase::Micros poll_deadline =
      dbase::MonotonicClock::Get()->NowMicros() + 2 * dbase::kMicrosPerSecond;
  while (!handle.done() && dbase::MonotonicClock::Get()->NowMicros() < poll_deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(handle.done());
  const InvocationReport report = handle.Report();
  EXPECT_EQ(report.phase, InvocationPhase::kSucceeded);
  EXPECT_EQ(report.priority, PriorityClass::kBatch);
  EXPECT_EQ(report.instances_launched, 1u);
  EXPECT_EQ(report.instances_aborted, 0u);
  EXPECT_GE(report.run_time_us, report.queue_time_us);
}

TEST(InvocationTest, CancelBeforeStartLaunchesNoInstances) {
  Platform platform(SmallPlatformConfig(2));  // One compute worker.
  auto started = std::make_shared<std::atomic<bool>>(false);
  auto release = std::make_shared<std::atomic<bool>>(false);
  ASSERT_TRUE(
      platform.RegisterFunction({.name = "block", .body = BlockerBody(started, release)}).ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(R"(
composition Block(in) => out { block(in = all in) => (out = out); }
composition Work(in) => out { echo(in = all in) => (out = out); }
)")
                  .ok());

  // Occupy the only compute worker so the victim invocation stays queued.
  dbase::Latch blocker_done(1);
  platform.InvokeAsync("Block", SingleArg("in", "x"),
                       [&](auto) { blocker_done.CountDown(); });
  while (!started->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  dbase::Latch victim_done(1);
  dbase::Result<DataSetList> victim_result = dbase::Internal("unset");
  InvocationRequest request;
  request.composition = "Work";
  request.args = SingleArg("in", "victim");
  InvocationHandle handle = platform.Submit(std::move(request), [&](auto result) {
    victim_result = std::move(result);
    victim_done.CountDown();
  });
  handle.Cancel();  // Before its instance can reach the engine.

  release->store(true, std::memory_order_release);
  ASSERT_TRUE(blocker_done.WaitFor(10 * dbase::kMicrosPerSecond));
  ASSERT_TRUE(victim_done.WaitFor(10 * dbase::kMicrosPerSecond));

  ASSERT_FALSE(victim_result.ok());
  EXPECT_EQ(victim_result.status().code(), dbase::StatusCode::kCancelled);
  const InvocationReport report = handle.Report();
  EXPECT_EQ(report.phase, InvocationPhase::kCancelled);
  // The cancelled invocation never entered a sandbox: its queued instance
  // was dropped at dequeue.
  EXPECT_EQ(report.instances_launched, 0u);
  EXPECT_EQ(report.instances_aborted, 1u);
  EXPECT_EQ(platform.dispatcher_stats().invocations_cancelled, 1u);
  EXPECT_GE(platform.engine_stats().compute_aborted, 1u);
  // Only the blocker actually executed.
  EXPECT_EQ(platform.engine_stats().compute_tasks, 1u);
}

TEST(InvocationTest, CancelMidFanOutStopsRemainingInstances) {
  constexpr int kInstances = 12;
  Platform platform(SmallPlatformConfig(2));  // One compute worker → serial.
  auto first_started = std::make_shared<std::atomic<bool>>(false);
  ASSERT_TRUE(platform
                  .RegisterFunction(
                      {.name = "slowpiece",
                       .body =
                           [first_started](dfunc::FunctionCtx& ctx) {
                             first_started->store(true, std::memory_order_release);
                             const dbase::Micros until =
                                 dbase::MonotonicClock::Get()->NowMicros() +
                                 50 * dbase::kMicrosPerMilli;
                             while (dbase::MonotonicClock::Get()->NowMicros() < until &&
                                    !ctx.cancelled()) {
                               std::this_thread::yield();
                             }
                             ctx.EmitOutput("tagged", "done");
                             return dbase::OkStatus();
                           }})
                  .ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Fan(in) => out { slowpiece(piece = each in) => (out = "
                      "tagged); }")
                  .ok());

  dbase::Latch done(1);
  dbase::Result<DataSetList> result = dbase::Internal("unset");
  InvocationRequest request;
  request.composition = "Fan";
  request.args = ManyItems("in", kInstances);
  InvocationHandle handle = platform.Submit(std::move(request), [&](auto r) {
    result = std::move(r);
    done.CountDown();
  });
  while (!first_started->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  handle.Cancel();  // Mid-fan-out: at least one instance is executing.
  ASSERT_TRUE(done.WaitFor(10 * dbase::kMicrosPerSecond));

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kCancelled);
  // The failure callback fires on the first cancelled instance; the queued
  // tail is aborted as the worker drains it — poll until it has.
  const dbase::Micros poll_deadline =
      dbase::MonotonicClock::Get()->NowMicros() + 5 * dbase::kMicrosPerSecond;
  while (handle.Report().instances_launched + handle.Report().instances_aborted <
             static_cast<uint64_t>(kInstances) &&
         dbase::MonotonicClock::Get()->NowMicros() < poll_deadline) {
    std::this_thread::yield();
  }
  // Every instance is accounted for, and the tail never executed.
  const InvocationReport report = handle.Report();
  EXPECT_EQ(report.instances_launched + report.instances_aborted,
            static_cast<uint64_t>(kInstances));
  EXPECT_LT(report.instances_launched, static_cast<uint64_t>(kInstances));
  EXPECT_GE(report.instances_aborted, 1u);
  EXPECT_EQ(platform.dispatcher_stats().invocations_cancelled, 1u);
}

TEST(InvocationTest, DeadlineStopsChainAndReturnsDeadlineExceeded) {
  Platform platform(SmallPlatformConfig(2));
  ASSERT_TRUE(platform
                  .RegisterFunction({.name = "spin",
                                     .body =
                                         [](dfunc::FunctionCtx& ctx) {
                                           const dbase::Micros until =
                                               dbase::MonotonicClock::Get()->NowMicros() +
                                               dbase::kMicrosPerSecond;
                                           while (dbase::MonotonicClock::Get()->NowMicros() <
                                                      until &&
                                                  !ctx.cancelled()) {
                                             std::this_thread::yield();
                                           }
                                           ctx.EmitOutput("out", "spun");
                                           return dbase::OkStatus();
                                         }})
                  .ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(R"(
composition Chain(in) => out {
  spin(in = all in) => (mid = out);
  echo(in = all mid) => (out = out);
}
)")
                  .ok());

  InvocationRequest request;
  request.composition = "Chain";
  request.args = SingleArg("in", "x");
  request.deadline_us = InvocationRequest::DeadlineIn(50 * dbase::kMicrosPerMilli);

  const dbase::Stopwatch watch;
  auto result = platform.Invoke(std::move(request));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kDeadlineExceeded);
  // Well before the 1 s spin: the deadline preempted, not the spin ending.
  EXPECT_LT(watch.ElapsedMicros(), 800 * dbase::kMicrosPerMilli);
  // The second node of the chain never launched an instance.
  EXPECT_EQ(platform.dispatcher_stats().compute_instances, 1u);
  // The blocking wrapper can return a beat before FailLocked records the
  // terminal — poll briefly.
  const dbase::Micros poll_deadline =
      dbase::MonotonicClock::Get()->NowMicros() + 5 * dbase::kMicrosPerSecond;
  while (platform.dispatcher_stats().invocations_deadline_exceeded == 0 &&
         dbase::MonotonicClock::Get()->NowMicros() < poll_deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(platform.dispatcher_stats().invocations_deadline_exceeded, 1u);
}

TEST(InvocationTest, FunctionTimeoutDoesNotCountAsInvocationDeadline) {
  // A per-function spec timeout also surfaces as kDeadlineExceeded, but
  // only the invocation-level deadline may feed the deadline counter —
  // monitoring must distinguish "the workload timed out" from "the client
  // deadline killed it".
  Platform platform(SmallPlatformConfig(2));
  dfunc::FunctionSpec hog;
  hog.name = "hog";
  hog.timeout_us = 20 * dbase::kMicrosPerMilli;
  hog.body = [](dfunc::FunctionCtx& ctx) {
    const dbase::Micros until =
        dbase::MonotonicClock::Get()->NowMicros() + dbase::kMicrosPerSecond;
    while (dbase::MonotonicClock::Get()->NowMicros() < until && !ctx.cancelled()) {
      std::this_thread::yield();
    }
    return dbase::OkStatus();
  };
  ASSERT_TRUE(platform.RegisterFunction(std::move(hog)).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition H(in) => out { hog(in = all in) => (out = out); }")
                  .ok());
  auto result = platform.Invoke("H", SingleArg("in", "x"));  // No deadline.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(platform.dispatcher_stats().invocations_deadline_exceeded, 0u);
  EXPECT_EQ(platform.dispatcher_stats().invocations_failed, 1u);
}

TEST(InvocationTest, ReaperFailsDeadlineWhileParkedOnCommCall) {
  PlatformConfig config = SmallPlatformConfig(2);
  config.sleep_for_modeled_latency = true;  // The comm call really parks.
  Platform platform(config);
  platform.mesh().Register(
      "slow.internal", std::make_shared<dhttp::EchoService>(),
      dhttp::LatencyModel{.base_us = 500 * dbase::kMicrosPerMilli, .per_kb_us = 0.0,
                          .jitter_sigma = 0.0});
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Call(req) => resp { HTTP(Request = each req) => (resp = "
                      "Response); }")
                  .ok());
  dhttp::HttpRequest req;
  req.method = dhttp::Method::kPost;
  req.target = "http://slow.internal/";
  req.body = "ping";

  InvocationRequest request;
  request.composition = "Call";
  request.args = SingleArg("req", req.Serialize());
  request.deadline_us = InvocationRequest::DeadlineIn(50 * dbase::kMicrosPerMilli);

  const dbase::Stopwatch watch;
  auto result = platform.Invoke(std::move(request));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kDeadlineExceeded);
  // No compute instance exists to observe the deadline — only the reaper
  // can fail this invocation, and it must do so near the deadline, not
  // after the 500 ms modelled network latency.
  EXPECT_LT(watch.ElapsedMicros(), 400 * dbase::kMicrosPerMilli);
}

TEST(InvocationTest, BlockingInvokeReturnsDeadlineExceededInsteadOfHanging) {
  // A raw dispatcher with a tight blocking-wait cap: even with no request
  // deadline, the blocking wrapper must not wait forever on a lost or slow
  // completion.
  dfunc::FunctionRegistry functions;
  CompositionRegistry compositions;
  CommFunctionRegistry comm_functions;
  dhttp::ServiceMesh mesh;
  MemoryAccountant accountant;
  WorkerSet::Config worker_config;
  worker_config.num_workers = 2;
  WorkerSet workers(worker_config, &mesh);
  workers.set_sleep_for_modeled_latency(false);

  dfunc::FunctionSpec sleeper;
  sleeper.name = "sleeper";
  sleeper.body = [](dfunc::FunctionCtx&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));  // Ignores cancel.
    return dbase::OkStatus();
  };
  ASSERT_TRUE(functions.Register(std::move(sleeper)).ok());
  auto asts = ddsl::ParseCompositions(
      "composition Nap(in) => out { sleeper(in = all in) => (out = out); }");
  ASSERT_TRUE(asts.ok());
  auto graph = ddsl::CompositionGraph::FromAst((*asts)[0]);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(compositions.Register(std::move(graph).value()).ok());

  Dispatcher::Config config;
  config.max_blocking_wait_us = 50 * dbase::kMicrosPerMilli;
  Dispatcher dispatcher(&functions, &compositions, &comm_functions, &workers, &accountant,
                        config);

  const dbase::Stopwatch watch;
  auto result = dispatcher.Invoke("Nap", SingleArg("in", "x"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kDeadlineExceeded);
  EXPECT_LT(watch.ElapsedMicros(), 300 * dbase::kMicrosPerMilli);
  // Let the sleeper drain before tearing the workers down.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
}

TEST(InvocationTest, InteractiveOvertakesBatchBacklog) {
  constexpr int kBatch = 30;
  Platform platform(SmallPlatformConfig(2));  // One compute worker → serial.
  ASSERT_TRUE(platform
                  .RegisterFunction({.name = "work",
                                     .body =
                                         [](dfunc::FunctionCtx& ctx) {
                                           dbase::SpinFor(5 * dbase::kMicrosPerMilli);
                                           ctx.EmitOutput("out", "done");
                                           return dbase::OkStatus();
                                         }})
                  .ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition W(in) => out { work(in = all in) => (out = out); }")
                  .ok());

  std::atomic<int> batch_done{0};
  std::atomic<int> batch_done_when_interactive_finished{-1};
  dbase::Latch all_done(kBatch + 1);
  for (int i = 0; i < kBatch; ++i) {
    InvocationRequest request;
    request.composition = "W";
    request.args = SingleArg("in", "b" + std::to_string(i));
    request.priority = PriorityClass::kBatch;
    platform.Submit(std::move(request), [&](auto) {
      batch_done.fetch_add(1, std::memory_order_relaxed);
      all_done.CountDown();
    });
  }
  InvocationRequest interactive;
  interactive.composition = "W";
  interactive.args = SingleArg("in", "urgent");
  interactive.priority = PriorityClass::kInteractive;
  platform.Submit(std::move(interactive), [&](auto result) {
    EXPECT_TRUE(result.ok());
    batch_done_when_interactive_finished.store(batch_done.load(std::memory_order_relaxed),
                                               std::memory_order_relaxed);
    all_done.CountDown();
  });
  ASSERT_TRUE(all_done.WaitFor(30 * dbase::kMicrosPerSecond));
  // Submitted last, but the urgent lane pops first: the interactive invoke
  // overtook (almost) the entire batch backlog instead of waiting out
  // ~30 × 5 ms behind it.
  EXPECT_GE(batch_done_when_interactive_finished.load(), 0);
  EXPECT_LE(batch_done_when_interactive_finished.load(), kBatch / 3);
}

TEST(InvocationTest, StatsExposePerClassInflightGauges) {
  Platform platform(SmallPlatformConfig(2));
  auto started = std::make_shared<std::atomic<bool>>(false);
  auto release = std::make_shared<std::atomic<bool>>(false);
  ASSERT_TRUE(
      platform.RegisterFunction({.name = "block", .body = BlockerBody(started, release)}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition B(in) => out { block(in = all in) => (out = out); }")
                  .ok());
  dbase::Latch done(1);
  InvocationRequest request;
  request.composition = "B";
  request.args = SingleArg("in", "x");
  request.priority = PriorityClass::kBatch;
  platform.Submit(std::move(request), [&](auto) { done.CountDown(); });
  while (!started->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  EXPECT_EQ(platform.dispatcher_stats().inflight_batch, 1u);
  EXPECT_EQ(platform.dispatcher_stats().inflight_interactive, 0u);
  release->store(true, std::memory_order_release);
  ASSERT_TRUE(done.WaitFor(10 * dbase::kMicrosPerSecond));
  const dbase::Micros poll_deadline =
      dbase::MonotonicClock::Get()->NowMicros() + 2 * dbase::kMicrosPerSecond;
  while (platform.dispatcher_stats().inflight_batch != 0 &&
         dbase::MonotonicClock::Get()->NowMicros() < poll_deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(platform.dispatcher_stats().inflight_batch, 0u);
}

}  // namespace
}  // namespace dandelion
