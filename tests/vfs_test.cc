// Tests for the in-memory virtual filesystem (dlibc's file interface, §4.1)
// and its path algebra.
#include <gtest/gtest.h>

#include "src/vfs/memfs.h"
#include "src/vfs/path.h"

namespace dvfs {
namespace {

// -------------------------------------------------------------------- Path

TEST(PathTest, NormalizeBasics) {
  EXPECT_EQ(NormalizePath("/").value(), "/");
  EXPECT_EQ(NormalizePath("/a/b").value(), "/a/b");
  EXPECT_EQ(NormalizePath("//a///b//").value(), "/a/b");
  EXPECT_EQ(NormalizePath("/a/").value(), "/a");
}

TEST(PathTest, NormalizeRejects) {
  EXPECT_FALSE(NormalizePath("").ok());
  EXPECT_FALSE(NormalizePath("relative/path").ok());
  EXPECT_FALSE(NormalizePath("/a/../b").ok());
  EXPECT_FALSE(NormalizePath("/a/./b").ok());
  EXPECT_FALSE(NormalizePath(std::string("/a\0b", 4)).ok());
}

TEST(PathTest, SplitPath) {
  EXPECT_TRUE(SplitPath("/").empty());
  auto parts = SplitPath("/a/bb/ccc");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "ccc");
}

TEST(PathTest, ParentAndBase) {
  EXPECT_EQ(ParentPath("/a/b").value(), "/a");
  EXPECT_EQ(ParentPath("/a").value(), "/");
  EXPECT_FALSE(ParentPath("/").ok());
  EXPECT_EQ(BaseName("/a/b").value(), "b");
  EXPECT_FALSE(BaseName("/").ok());
}

TEST(PathTest, Join) {
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/a/", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/", "b"), "/b");
}

// ------------------------------------------------------------------- MemFs

class MemFsTest : public ::testing::Test {
 protected:
  MemFs fs_;
};

TEST_F(MemFsTest, RootExists) {
  EXPECT_TRUE(fs_.Exists("/"));
  EXPECT_TRUE(fs_.IsDirectory("/"));
  EXPECT_FALSE(fs_.IsFile("/"));
}

TEST_F(MemFsTest, MkdirAndList) {
  ASSERT_TRUE(fs_.Mkdir("/in").ok());
  ASSERT_TRUE(fs_.Mkdir("/in/set1").ok());
  EXPECT_TRUE(fs_.IsDirectory("/in/set1"));
  auto entries = fs_.ListDir("/in");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0], "set1");
}

TEST_F(MemFsTest, MkdirErrors) {
  EXPECT_FALSE(fs_.Mkdir("/a/b").ok());  // Parent missing.
  ASSERT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_FALSE(fs_.Mkdir("/a").ok());  // Already exists.
  EXPECT_FALSE(fs_.Mkdir("/").ok());
}

TEST_F(MemFsTest, MkdirRecursive) {
  ASSERT_TRUE(fs_.Mkdir("/x/y/z", /*recursive=*/true).ok());
  EXPECT_TRUE(fs_.IsDirectory("/x/y/z"));
  // Recursive mkdir over an existing prefix is fine.
  EXPECT_TRUE(fs_.Mkdir("/x/y/w", /*recursive=*/true).ok());
  // But a file in the way is an error.
  ASSERT_TRUE(fs_.WriteFile("/x/file", "f").ok());
  EXPECT_FALSE(fs_.Mkdir("/x/file/sub", /*recursive=*/true).ok());
}

TEST_F(MemFsTest, WriteReadFile) {
  ASSERT_TRUE(fs_.WriteFile("/data", "hello").ok());
  EXPECT_EQ(fs_.ReadFile("/data").value(), "hello");
  EXPECT_EQ(fs_.FileSize("/data").value(), 5u);
  EXPECT_TRUE(fs_.IsFile("/data"));
  // Overwrite truncates.
  ASSERT_TRUE(fs_.WriteFile("/data", "x").ok());
  EXPECT_EQ(fs_.ReadFile("/data").value(), "x");
}

TEST_F(MemFsTest, AppendFile) {
  ASSERT_TRUE(fs_.AppendFile("/log", "a").ok());  // Creates.
  ASSERT_TRUE(fs_.AppendFile("/log", "bc").ok());
  EXPECT_EQ(fs_.ReadFile("/log").value(), "abc");
  ASSERT_TRUE(fs_.Mkdir("/dir").ok());
  EXPECT_FALSE(fs_.AppendFile("/dir", "x").ok());
}

TEST_F(MemFsTest, ReadErrors) {
  EXPECT_FALSE(fs_.ReadFile("/missing").ok());
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  EXPECT_FALSE(fs_.ReadFile("/d").ok());
  EXPECT_FALSE(fs_.FileSize("/d").ok());
  EXPECT_FALSE(fs_.ListDir("/missing").ok());
  ASSERT_TRUE(fs_.WriteFile("/f", "x").ok());
  EXPECT_FALSE(fs_.ListDir("/f").ok());
}

TEST_F(MemFsTest, CannotOverwriteDirWithFile) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  EXPECT_FALSE(fs_.WriteFile("/d", "x").ok());
}

TEST_F(MemFsTest, RemoveSemantics) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  ASSERT_TRUE(fs_.WriteFile("/d/f", "x").ok());
  EXPECT_FALSE(fs_.Remove("/d").ok());  // Not empty.
  EXPECT_TRUE(fs_.Remove("/d/f").ok());
  EXPECT_TRUE(fs_.Remove("/d").ok());
  EXPECT_FALSE(fs_.Remove("/d").ok());  // Gone.
  EXPECT_FALSE(fs_.Remove("/").ok());
}

TEST_F(MemFsTest, RemoveAll) {
  ASSERT_TRUE(fs_.Mkdir("/d/e", /*recursive=*/true).ok());
  ASSERT_TRUE(fs_.WriteFile("/d/e/f", "xyz").ok());
  EXPECT_TRUE(fs_.RemoveAll("/d").ok());
  EXPECT_FALSE(fs_.Exists("/d"));
  EXPECT_EQ(fs_.TotalBytes(), 0u);
}

TEST_F(MemFsTest, Rename) {
  ASSERT_TRUE(fs_.Mkdir("/a").ok());
  ASSERT_TRUE(fs_.WriteFile("/a/f", "v").ok());
  ASSERT_TRUE(fs_.Mkdir("/b").ok());
  EXPECT_TRUE(fs_.Rename("/a/f", "/b/g").ok());
  EXPECT_FALSE(fs_.Exists("/a/f"));
  EXPECT_EQ(fs_.ReadFile("/b/g").value(), "v");
  // Destination exists.
  ASSERT_TRUE(fs_.WriteFile("/a/f", "w").ok());
  EXPECT_FALSE(fs_.Rename("/a/f", "/b/g").ok());
  // Directory into own subtree.
  EXPECT_FALSE(fs_.Rename("/a", "/a/sub").ok());
}

TEST_F(MemFsTest, TotalBytesTracksWrites) {
  EXPECT_EQ(fs_.TotalBytes(), 0u);
  ASSERT_TRUE(fs_.WriteFile("/f1", "12345").ok());
  EXPECT_EQ(fs_.TotalBytes(), 5u);
  ASSERT_TRUE(fs_.WriteFile("/f1", "12").ok());  // Truncating overwrite.
  EXPECT_EQ(fs_.TotalBytes(), 2u);
  ASSERT_TRUE(fs_.AppendFile("/f1", "3456").ok());
  EXPECT_EQ(fs_.TotalBytes(), 6u);
  ASSERT_TRUE(fs_.Remove("/f1").ok());
  EXPECT_EQ(fs_.TotalBytes(), 0u);
}

TEST_F(MemFsTest, FileCount) {
  EXPECT_EQ(fs_.FileCount(), 0u);
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  ASSERT_TRUE(fs_.WriteFile("/d/a", "").ok());
  ASSERT_TRUE(fs_.WriteFile("/d/b", "").ok());
  EXPECT_EQ(fs_.FileCount(), 2u);
}

TEST_F(MemFsTest, ListDirSorted) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  for (const char* name : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(fs_.WriteFile(std::string("/d/") + name, "").ok());
  }
  auto entries = fs_.ListDir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(*entries, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// Property-style sweep: many files round-trip through write/read.
class MemFsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MemFsPropertyTest, ManyFilesRoundTrip) {
  MemFs fs;
  const int n = GetParam();
  ASSERT_TRUE(fs.Mkdir("/files").ok());
  for (int i = 0; i < n; ++i) {
    const std::string path = "/files/f" + std::to_string(i);
    std::string content(static_cast<size_t>(i * 13 % 257), static_cast<char>('a' + i % 26));
    ASSERT_TRUE(fs.WriteFile(path, content).ok());
  }
  uint64_t expected_bytes = 0;
  for (int i = 0; i < n; ++i) {
    const std::string path = "/files/f" + std::to_string(i);
    std::string content(static_cast<size_t>(i * 13 % 257), static_cast<char>('a' + i % 26));
    EXPECT_EQ(fs.ReadFile(path).value(), content);
    expected_bytes += content.size();
  }
  EXPECT_EQ(fs.TotalBytes(), expected_bytes);
  EXPECT_EQ(fs.FileCount(), static_cast<uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MemFsPropertyTest, ::testing::Values(1, 10, 100, 500));

}  // namespace
}  // namespace dvfs
