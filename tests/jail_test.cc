// Fault-contained untrusted execution: the seccomp-BPF syscall jail on the
// process backend, the failure taxonomy (distinct FailureKinds for jail
// kill, genuine crash, deadline kill, cancel kill), the dispatcher's
// policy-driven retries with per-function circuit breaking, the pooled
// template-child-loss fallback, and the deterministic fault-injection
// seams that drive all of it. Jail assertions degrade to capability-checked
// skips on kernels without seccomp — with the explicit fallback assertion
// that the unconfined path still executes correctly.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/base/clock.h"
#include "src/base/thread.h"
#include "src/func/registry.h"
#include "src/runtime/fault.h"
#include "src/runtime/invocation.h"
#include "src/runtime/jail.h"
#include "src/runtime/platform.h"
#include "src/runtime/sandbox_pool.h"

namespace {

using dandelion::FaultInjector;
using dandelion::FaultPlan;
using dandelion::FaultPoint;
using dandelion::IsolationBackend;
using dandelion::SandboxCapabilities;
using dpolicy::FailureKind;
using dbase::kMicrosPerMilli;
using dbase::kMicrosPerSecond;

// Every test leaves the process-wide injector disarmed, armed or not.
class JailTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Get().Reset(); }
  void TearDown() override { FaultInjector::Get().Reset(); }
};

dandelion::PlatformConfig ProcessConfig() {
  dandelion::PlatformConfig config;
  config.num_workers = 3;
  config.backend = IsolationBackend::kProcess;
  config.sleep_for_modeled_latency = false;
  return config;
}

dandelion::PlatformConfig ThreadConfig() {
  dandelion::PlatformConfig config;
  config.num_workers = 3;
  config.backend = IsolationBackend::kThread;
  config.sleep_for_modeled_latency = false;
  return config;
}

dfunc::FunctionSpec EchoSpec(const char* name = "echo") {
  dfunc::FunctionSpec spec;
  spec.name = name;
  spec.context_bytes = 1 << 20;
  spec.body = [](dfunc::FunctionCtx& ctx) {
    auto input = ctx.SingleInput("in");
    ctx.EmitOutput("out", input.ok() ? *input : "none");
    return dbase::OkStatus();
  };
  return spec;
}

constexpr const char* kSingleDsl = R"(
composition Run(in) => out {
  echo(in = all in) => (out = out);
}
)";

dfunc::DataSetList OneInput(const char* data) {
  return {dfunc::DataSet{"in", {dfunc::DataItem{"", data}}}};
}

// ------------------------------------------------------ Capability probe

TEST_F(JailTest, CapabilityProbeIsStableAndDescriptive) {
  const SandboxCapabilities& caps = SandboxCapabilities::Get();
  EXPECT_FALSE(caps.detail.empty());
  // The probe is cached: a second read observes the identical answer.
  EXPECT_EQ(&caps, &SandboxCapabilities::Get());
  EXPECT_EQ(caps.seccomp_filter, SandboxCapabilities::Get().seccomp_filter);
}

// ------------------------------------------------------------- Jail kill

// A function that reaches for the filesystem. Jailed, the openat never
// returns — SECCOMP_RET_KILL_PROCESS delivers SIGSYS and the parent decodes
// kJailKill. Unconfined (no seccomp on this kernel), it is a harmless open.
dfunc::FunctionSpec FileGrabberSpec() {
  dfunc::FunctionSpec spec = EchoSpec();
  spec.body = [](dfunc::FunctionCtx& ctx) {
    const int fd = ::open("/dev/null", O_RDONLY);
    ctx.EmitOutput("out", fd >= 0 ? "opened" : "denied");
    if (fd >= 0) {
      ::close(fd);
    }
    return dbase::OkStatus();
  };
  return spec;
}

TEST_F(JailTest, ForbiddenSyscallIsKilledNotExecuted) {
  dandelion::Platform platform(ProcessConfig());
  ASSERT_TRUE(platform.RegisterFunction(FileGrabberSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  dandelion::InvocationRequest request;
  request.composition = "Run";
  request.args = OneInput("x");
  dbase::Latch latch(1);
  dbase::Result<dfunc::DataSetList> result = dfunc::DataSetList{};
  auto handle = platform.Submit(std::move(request),
                                [&](dbase::Result<dfunc::DataSetList> r) {
                                  result = std::move(r);
                                  latch.CountDown();
                                });
  ASSERT_TRUE(latch.WaitFor(10 * kMicrosPerSecond));

  if (!SandboxCapabilities::Get().seccomp_filter) {
    // Unconfined fallback: the capability record must say so, and the
    // function must have executed normally (the open succeeds).
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ((*result)[0].items[0].data, "opened");
    GTEST_SKIP() << "seccomp filters unavailable: " << SandboxCapabilities::Get().detail;
  }

  ASSERT_FALSE(result.ok()) << "jailed function escaped the syscall jail";
  EXPECT_EQ(result.status().code(), dbase::StatusCode::kPermissionDenied)
      << result.status().message();
  const dandelion::InvocationReport report = handle.Report();
  EXPECT_EQ(report.failure_kind, FailureKind::kJailKill);
  // Deterministic function behaviour is never retried.
  EXPECT_EQ(report.retries_attempted, 0u);
}

TEST_F(JailTest, PureInMemoryFunctionRunsJailedUnmodified) {
  dandelion::Platform platform(ProcessConfig());
  ASSERT_TRUE(platform.RegisterFunction(EchoSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  dandelion::InvocationRequest request;
  request.composition = "Run";
  request.args = OneInput("pure");
  auto result = platform.Invoke(std::move(request));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ((*result)[0].items[0].data, "pure");
}

// ------------------------------------------------- Failure-kind taxonomy

// With retries disabled, each termination cause must surface its own
// FailureKind in the InvocationReport: a genuine SIGSEGV is kCrash, a spec
// timeout is kDeadlineKill, a client cancel is kCancelKill — and they map
// to different Status codes.
TEST_F(JailTest, CrashDeadlineAndCancelProduceDistinctKinds) {
  dandelion::PlatformConfig config = ProcessConfig();
  config.retry.enabled = false;  // Observe raw kinds, not retry outcomes.
  dandelion::Platform platform(config);

  dfunc::FunctionSpec crasher = EchoSpec("crasher");
  crasher.body = [](dfunc::FunctionCtx&) {
    volatile int* null_page = nullptr;
    *null_page = 1;  // SIGSEGV: a genuine crash, not a jail kill.
    return dbase::OkStatus();
  };
  dfunc::FunctionSpec slow = EchoSpec("slow");
  slow.timeout_us = 30 * kMicrosPerMilli;
  slow.body = [](dfunc::FunctionCtx& ctx) {
    dbase::SpinFor(2 * kMicrosPerSecond);
    ctx.EmitOutput("out", "late");
    return dbase::OkStatus();
  };
  dfunc::FunctionSpec spinner = EchoSpec("spinner");
  spinner.body = [](dfunc::FunctionCtx& ctx) {
    dbase::SpinFor(2 * kMicrosPerSecond);
    ctx.EmitOutput("out", "spun");
    return dbase::OkStatus();
  };
  ASSERT_TRUE(platform.RegisterFunction(std::move(crasher)).ok());
  ASSERT_TRUE(platform.RegisterFunction(std::move(slow)).ok());
  ASSERT_TRUE(platform.RegisterFunction(std::move(spinner)).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(R"(
composition RunCrash(in) => out { crasher(in = all in) => (out = out); }
composition RunSlow(in) => out { slow(in = all in) => (out = out); }
composition RunSpin(in) => out { spinner(in = all in) => (out = out); }
)")
                  .ok());

  {
    dandelion::InvocationRequest request;
    request.composition = "RunCrash";
    request.args = OneInput("x");
    dbase::Latch latch(1);
    dbase::Result<dfunc::DataSetList> result = dfunc::DataSetList{};
    auto handle = platform.Submit(std::move(request),
                                  [&](dbase::Result<dfunc::DataSetList> r) {
                                    result = std::move(r);
                                    latch.CountDown();
                                  });
    ASSERT_TRUE(latch.WaitFor(10 * kMicrosPerSecond));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), dbase::StatusCode::kInternal);
    EXPECT_EQ(handle.Report().failure_kind, FailureKind::kCrash);
  }
  {
    dandelion::InvocationRequest request;
    request.composition = "RunSlow";
    request.args = OneInput("x");
    dbase::Latch latch(1);
    dbase::Result<dfunc::DataSetList> result = dfunc::DataSetList{};
    auto handle = platform.Submit(std::move(request),
                                  [&](dbase::Result<dfunc::DataSetList> r) {
                                    result = std::move(r);
                                    latch.CountDown();
                                  });
    ASSERT_TRUE(latch.WaitFor(10 * kMicrosPerSecond));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), dbase::StatusCode::kDeadlineExceeded);
    EXPECT_EQ(handle.Report().failure_kind, FailureKind::kDeadlineKill);
  }
  {
    dandelion::InvocationRequest request;
    request.composition = "RunSpin";
    request.args = OneInput("x");
    dbase::Latch latch(1);
    dbase::Result<dfunc::DataSetList> result = dfunc::DataSetList{};
    auto handle = platform.Submit(std::move(request),
                                  [&](dbase::Result<dfunc::DataSetList> r) {
                                    result = std::move(r);
                                    latch.CountDown();
                                  });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    handle.Cancel();
    ASSERT_TRUE(latch.WaitFor(10 * kMicrosPerSecond));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), dbase::StatusCode::kCancelled);
    EXPECT_EQ(handle.Report().failure_kind, FailureKind::kCancelKill);
    EXPECT_EQ(handle.Report().phase, dandelion::InvocationPhase::kCancelled);
  }
}

// --------------------------------------------------- Retry recovers crash

TEST_F(JailTest, RetryRecoversInjectedCrashTransparently) {
  dandelion::Platform platform(ProcessConfig());
  ASSERT_TRUE(platform.RegisterFunction(EchoSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  // Exactly one crash: the first child traps before producing an outcome,
  // the relaunch runs clean.
  FaultInjector::Get().Arm(FaultPoint::kChildCrashBeforeOutcome,
                           FaultPlan{.every_n = 1, .limit = 1});

  dandelion::InvocationRequest request;
  request.composition = "Run";
  request.args = OneInput("survive");
  dbase::Latch latch(1);
  dbase::Result<dfunc::DataSetList> result = dfunc::DataSetList{};
  auto handle = platform.Submit(std::move(request),
                                [&](dbase::Result<dfunc::DataSetList> r) {
                                  result = std::move(r);
                                  latch.CountDown();
                                });
  ASSERT_TRUE(latch.WaitFor(10 * kMicrosPerSecond));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ((*result)[0].items[0].data, "survive");

  // The client saw success; the report records the absorbed failure.
  const dandelion::InvocationReport report = handle.Report();
  EXPECT_EQ(report.retries_attempted, 1u);
  EXPECT_EQ(report.failure_kind, FailureKind::kCrash);
  const dandelion::DispatcherStats stats = platform.dispatcher_stats();
  EXPECT_GE(stats.sandbox_failures, 1u);
  EXPECT_GE(stats.retries_attempted, 1u);
}

// A child that tears the outcome header mid-write before dying must not
// poison the retry: the relaunch re-marshals the inputs into a fresh
// context instead of trusting the corrupted bytes.
TEST_F(JailTest, TornOutcomeIsDiscardedAndRetried) {
  dandelion::Platform platform(ProcessConfig());
  ASSERT_TRUE(platform.RegisterFunction(EchoSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  FaultInjector::Get().Arm(FaultPoint::kChildCrashAfterPartialWrite,
                           FaultPlan{.every_n = 1, .limit = 1});

  dandelion::InvocationRequest request;
  request.composition = "Run";
  request.args = OneInput("intact");
  dbase::Latch latch(1);
  dbase::Result<dfunc::DataSetList> result = dfunc::DataSetList{};
  auto handle = platform.Submit(std::move(request),
                                [&](dbase::Result<dfunc::DataSetList> r) {
                                  result = std::move(r);
                                  latch.CountDown();
                                });
  ASSERT_TRUE(latch.WaitFor(10 * kMicrosPerSecond));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ((*result)[0].items[0].data, "intact");
  EXPECT_EQ(handle.Report().retries_attempted, 1u);
}

TEST_F(JailTest, TransientResourceExhaustionIsRetried) {
  dandelion::Platform platform(ThreadConfig());
  ASSERT_TRUE(platform.RegisterFunction(EchoSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  FaultInjector::Get().Arm(FaultPoint::kTransientResourceExhausted,
                           FaultPlan{.every_n = 1, .limit = 1});

  dandelion::InvocationRequest request;
  request.composition = "Run";
  request.args = OneInput("again");
  dbase::Latch latch(1);
  dbase::Result<dfunc::DataSetList> result = dfunc::DataSetList{};
  auto handle = platform.Submit(std::move(request),
                                [&](dbase::Result<dfunc::DataSetList> r) {
                                  result = std::move(r);
                                  latch.CountDown();
                                });
  ASSERT_TRUE(latch.WaitFor(10 * kMicrosPerSecond));
  ASSERT_TRUE(result.ok()) << result.status().message();
  const dandelion::InvocationReport report = handle.Report();
  EXPECT_EQ(report.retries_attempted, 1u);
  EXPECT_EQ(report.failure_kind, FailureKind::kResourceExhausted);
}

// ----------------------------------------------- Pool template-child loss

TEST_F(JailTest, PoolChildLostFallsBackToColdForkTransparently) {
  dandelion::PlatformConfig config = ProcessConfig();
  config.enable_sandbox_pool = true;
  config.sandbox_pool.prewarm.ewma_alpha = 0.5;
  config.sandbox_pool.prewarm.provision_window_us = 100 * kMicrosPerMilli;
  config.sandbox_pool.prewarm.scale_to_zero_after_us = 10 * kMicrosPerSecond;
  dandelion::Platform platform(config);
  ASSERT_TRUE(platform.RegisterFunction(EchoSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  dandelion::SandboxPool* pool = platform.sandbox_pool();
  {
    dandelion::InvocationRequest request;
    request.composition = "Run";
    request.args = OneInput("prime");
    ASSERT_TRUE(platform.Invoke(std::move(request)).ok());
  }
  pool->Tick(0);
  pool->Tick(100 * kMicrosPerMilli);
  ASSERT_GE(pool->Stats().shelved, 1);

  // The next acquire kills the warm template child before dispatch: the
  // go-pipe write finds it gone and the engine falls back to a cold fork
  // over the same warm context — the client must never notice.
  FaultInjector::Get().Arm(FaultPoint::kPoolTemplateDeath,
                           FaultPlan{.every_n = 1, .limit = 1});

  dandelion::InvocationRequest request;
  request.composition = "Run";
  request.args = OneInput("fallback");
  auto result = platform.Invoke(std::move(request));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ((*result)[0].items[0].data, "fallback");
  EXPECT_EQ(pool->Stats().pool_child_lost, 1u);
  EXPECT_EQ(pool->Stats().leased, 0);
}

// ------------------------------------------------------- Circuit breaker

TEST_F(JailTest, BreakerTripsFastFailsAndRecoversAfterCooldown) {
  dandelion::PlatformConfig config = ThreadConfig();
  config.retry.max_retries_interactive = 0;  // Every failure is terminal.
  config.retry.max_retries_batch = 0;
  config.retry.breaker_trip_after = 3;
  config.retry.breaker_cooldown_us = 50 * kMicrosPerMilli;
  dandelion::Platform platform(config);
  ASSERT_TRUE(platform.RegisterFunction(EchoSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  // Three consecutive launch failures trip the breaker.
  FaultInjector::Get().Arm(FaultPoint::kTransientResourceExhausted,
                           FaultPlan{.every_n = 1, .limit = 3});
  for (int i = 0; i < 3; ++i) {
    dandelion::InvocationRequest request;
    request.composition = "Run";
    request.args = OneInput("doomed");
    auto result = platform.Invoke(std::move(request));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), dbase::StatusCode::kResourceExhausted);
  }
  dandelion::DispatcherStats stats = platform.dispatcher_stats();
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breakers_open, 1);

  // While open: launches fast-fail kUnavailable without reaching a sandbox.
  {
    dandelion::InvocationRequest request;
    request.composition = "Run";
    request.args = OneInput("shed");
    auto result = platform.Invoke(std::move(request));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), dbase::StatusCode::kUnavailable)
        << result.status().message();
  }
  stats = platform.dispatcher_stats();
  EXPECT_GE(stats.breaker_fast_fails, 1u);

  // After the cooldown the half-open probe is admitted; the fault is spent
  // (limit 3), so the probe succeeds and the breaker closes.
  FaultInjector::Get().Disarm(FaultPoint::kTransientResourceExhausted);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  {
    dandelion::InvocationRequest request;
    request.composition = "Run";
    request.args = OneInput("probe");
    auto result = platform.Invoke(std::move(request));
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ((*result)[0].items[0].data, "probe");
  }
  stats = platform.dispatcher_stats();
  EXPECT_GE(stats.breaker_recoveries, 1u);
  EXPECT_EQ(stats.breakers_open, 0);
  const auto breakers = platform.breaker_snapshots();
  ASSERT_EQ(breakers.size(), 1u);
  EXPECT_EQ(breakers[0].function, "echo");
  EXPECT_EQ(breakers[0].state, dpolicy::BreakerState::kClosed);
}

}  // namespace
