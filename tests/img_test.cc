// Tests for the image codecs: QOI encode/decode round-trips (property
// sweeps over sizes/channels), QOI op coverage, CRC-32/Adler-32 vectors,
// PNG structural validation, and the QOI→PNG transcode used by §7.6.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/img/png.h"
#include "src/img/qoi.h"

namespace dimg {
namespace {

// --------------------------------------------------------------------- QOI

TEST(QoiTest, HeaderAndMarker) {
  Image image = MakeTestImage(8, 8, 4, 1);
  const std::string encoded = QoiEncode(image);
  ASSERT_GE(encoded.size(), 22u);
  EXPECT_EQ(encoded.substr(0, 4), "qoif");
  EXPECT_EQ(encoded.substr(encoded.size() - 8), std::string("\0\0\0\0\0\0\0\x01", 8));
}

TEST(QoiTest, RoundTripRgba) {
  Image image = MakeTestImage(32, 24, 4, 7);
  auto decoded = QoiDecode(QoiEncode(image));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, image);
}

TEST(QoiTest, RoundTripRgb) {
  Image image = MakeTestImage(17, 9, 3, 8);
  auto decoded = QoiDecode(QoiEncode(image));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, image);
}

TEST(QoiTest, RunsCompressWell) {
  // A flat image is nearly all RUN ops: tiny output.
  Image flat;
  flat.width = 64;
  flat.height = 64;
  flat.channels = 4;
  flat.pixels.assign(64 * 64 * 4, 200);
  const std::string encoded = QoiEncode(flat);
  EXPECT_LT(encoded.size(), 200u);
  auto decoded = QoiDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, flat);
}

TEST(QoiTest, AlphaChangesUseRgbaOp) {
  Image image;
  image.width = 4;
  image.height = 1;
  image.channels = 4;
  image.pixels = {
      255, 0,   0,   255,  // Opaque red.
      255, 0,   0,   128,  // Alpha change → RGBA op.
      0,   255, 0,   128,  //
      0,   255, 0,   255,  // Alpha back up.
  };
  auto decoded = QoiDecode(QoiEncode(image));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, image);
}

TEST(QoiTest, RandomNoiseRoundTrip) {
  dbase::Rng rng(99);
  Image image;
  image.width = 23;
  image.height = 31;
  image.channels = 4;
  image.pixels.resize(23u * 31 * 4);
  for (auto& b : image.pixels) {
    b = static_cast<uint8_t>(rng.NextBounded(256));
  }
  auto decoded = QoiDecode(QoiEncode(image));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, image);
}

TEST(QoiTest, DecodeRejections) {
  EXPECT_FALSE(QoiDecode("").ok());
  EXPECT_FALSE(QoiDecode("short").ok());
  const std::string good = QoiEncode(MakeTestImage(8, 8, 4, 1));
  std::string bad_magic = good;
  bad_magic[0] = 'x';
  EXPECT_FALSE(QoiDecode(bad_magic).ok());
  EXPECT_FALSE(QoiDecode(good.substr(0, good.size() / 2)).ok());  // Truncated.
  std::string bad_channels = good;
  bad_channels[12] = 7;
  EXPECT_FALSE(QoiDecode(bad_channels).ok());
}

struct QoiDims {
  uint32_t width;
  uint32_t height;
  uint8_t channels;
};

class QoiPropertyTest : public ::testing::TestWithParam<QoiDims> {};

TEST_P(QoiPropertyTest, RoundTrip) {
  const QoiDims dims = GetParam();
  Image image = MakeTestImage(dims.width, dims.height, dims.channels,
                              dims.width * 31 + dims.height);
  auto decoded = QoiDecode(QoiEncode(image));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, image);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, QoiPropertyTest,
    ::testing::Values(QoiDims{1, 1, 4}, QoiDims{1, 1, 3}, QoiDims{2, 3, 4}, QoiDims{64, 1, 4},
                      QoiDims{1, 64, 3}, QoiDims{63, 63, 4}, QoiDims{96, 64, 4},
                      QoiDims{128, 128, 3}),
    [](const ::testing::TestParamInfo<QoiDims>& param_info) {
      return std::to_string(param_info.param.width) + "x" + std::to_string(param_info.param.height) + "x" +
             std::to_string(param_info.param.channels);
    });

TEST(QoiTest, PaperSizedImageIsAbout18kB) {
  // §7.6 uses an 18 kB QOI image; our default test image at 96x64 lands in
  // the same ballpark so Figure 8's compute time is representative.
  Image image = MakeTestImage(96, 64, 4, 42);
  const std::string encoded = QoiEncode(image);
  EXPECT_GT(encoded.size(), 6u * 1024);
  EXPECT_LT(encoded.size(), 40u * 1024);
}

// ---------------------------------------------------------------- Checksums

TEST(ChecksumTest, Crc32KnownVectors) {
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);  // Classic check value.
  EXPECT_EQ(Crc32("IEND"), 0xAE426082u);       // Every PNG's last 8 bytes.
}

TEST(ChecksumTest, Adler32KnownVectors) {
  EXPECT_EQ(Adler32(""), 1u);
  EXPECT_EQ(Adler32("Wikipedia"), 0x11E60398u);
}

TEST(ChecksumTest, Crc32Seeded) {
  // Incremental == one-shot.
  const std::string data = "hello world";
  const uint32_t whole = Crc32(data);
  const uint32_t split = Crc32(Crc32("hello"), " world");
  EXPECT_EQ(whole, split);
}

// --------------------------------------------------------------------- PNG

TEST(PngTest, EncodeStructure) {
  Image image = MakeTestImage(16, 8, 4, 3);
  auto png = PngEncode(image);
  ASSERT_TRUE(png.ok());
  EXPECT_EQ(png->substr(1, 3), "PNG");
  EXPECT_NE(png->find("IHDR"), std::string::npos);
  EXPECT_NE(png->find("IDAT"), std::string::npos);
  EXPECT_NE(png->find("IEND"), std::string::npos);
}

TEST(PngTest, RoundTripRgbaAndRgb) {
  for (uint8_t channels : {static_cast<uint8_t>(3), static_cast<uint8_t>(4)}) {
    Image image = MakeTestImage(21, 13, channels, channels);
    auto png = PngEncode(image);
    ASSERT_TRUE(png.ok());
    auto decoded = PngDecodeStored(*png);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, image);
  }
}

TEST(PngTest, LargeImageMultipleStoredBlocks) {
  // > 64 KiB of scanlines forces several stored deflate blocks.
  Image image = MakeTestImage(256, 128, 4, 5);
  auto png = PngEncode(image);
  ASSERT_TRUE(png.ok());
  auto decoded = PngDecodeStored(*png);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, image);
}

TEST(PngTest, EncodeRejectsBadImages) {
  Image bad;
  bad.width = 4;
  bad.height = 4;
  bad.channels = 2;  // Unsupported.
  bad.pixels.resize(32);
  EXPECT_FALSE(PngEncode(bad).ok());

  Image mismatched = MakeTestImage(4, 4, 4, 1);
  mismatched.pixels.pop_back();
  EXPECT_FALSE(PngEncode(mismatched).ok());
}

TEST(PngTest, DecodeDetectsCorruption) {
  Image image = MakeTestImage(8, 8, 4, 9);
  auto png = PngEncode(image);
  ASSERT_TRUE(png.ok());
  EXPECT_FALSE(PngDecodeStored("not a png").ok());
  // Flip one byte inside IDAT payload → CRC mismatch.
  std::string corrupted = *png;
  const size_t idat = corrupted.find("IDAT");
  ASSERT_NE(idat, std::string::npos);
  corrupted[idat + 10] = static_cast<char>(corrupted[idat + 10] ^ 0xFF);
  auto result = PngDecodeStored(corrupted);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("CRC"), std::string::npos);
}

TEST(PngTest, DecodeValidatesTruncation) {
  Image image = MakeTestImage(8, 8, 4, 9);
  auto png = PngEncode(image);
  ASSERT_TRUE(png.ok());
  EXPECT_FALSE(PngDecodeStored(png->substr(0, png->size() - 16)).ok());
}

// --------------------------------------------------------------- Transcode

TEST(TranscodeTest, QoiToPngPreservesPixels) {
  Image image = MakeTestImage(96, 64, 4, 42);  // The §7.6 workload.
  auto png = TranscodeQoiToPng(QoiEncode(image));
  ASSERT_TRUE(png.ok()) << png.status().ToString();
  auto decoded = PngDecodeStored(*png);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, image);
}

TEST(TranscodeTest, RejectsBadQoi) { EXPECT_FALSE(TranscodeQoiToPng("garbage").ok()); }

}  // namespace
}  // namespace dimg
