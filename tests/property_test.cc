// Cross-cutting property tests:
//  - dsql expressions evaluated against an independent reference interpreter
//    over randomized tables and random expression trees,
//  - operator algebra laws (filter splitting, project idempotence,
//    aggregate-of-concat vs concat-of-aggregates),
//  - simulator conservation laws (every submitted job completes; FIFO
//    ordering; work conservation under capacity changes),
//  - marshalling composition (marshal ∘ unmarshal = id at several layers).
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "src/base/rng.h"
#include "src/func/data.h"
#include "src/sim/event_queue.h"
#include "src/sql/expr.h"
#include "src/sql/operators.h"
#include "src/sql/ssb.h"

namespace {

using dsql::Col;
using dsql::Column;
using dsql::ColumnType;
using dsql::Expr;
using dsql::ExprPtr;
using dsql::Lit;
using dsql::Table;
using dsql::Value;

// ------------------------------------------------------- Expression trees

// A random int-valued expression over columns {a, b, c}, paired with a
// reference evaluator built alongside it: plain int64 arithmetic and
// by-name column lookup, sharing no code with Expr::Eval.
using RefEval = std::function<int64_t(const Table&, size_t)>;

struct IntExpr {
  ExprPtr expr;
  RefEval ref;
};

IntExpr RandomIntExpr(dbase::Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.3)) {
    if (rng.Bernoulli(0.5)) {
      const char* names[] = {"a", "b", "c"};
      const std::string name = names[rng.NextBounded(3)];
      return {Col(name), [name](const Table& table, size_t row) {
                return table.GetColumn(name).value()->IntAt(row);
              }};
    }
    const int64_t v = rng.UniformInt(-20, 20);
    return {Lit(v), [v](const Table&, size_t) { return v; }};
  }
  IntExpr left = RandomIntExpr(rng, depth - 1);
  IntExpr right = RandomIntExpr(rng, depth - 1);
  const uint64_t op = rng.NextBounded(3);
  ExprPtr expr;
  switch (op) {
    case 0:
      expr = dsql::Add(std::move(left.expr), std::move(right.expr));
      break;
    case 1:
      expr = dsql::Sub(std::move(left.expr), std::move(right.expr));
      break;
    default:
      expr = dsql::Mul(std::move(left.expr), std::move(right.expr));
      break;
  }
  return {std::move(expr),
          [op, l = std::move(left.ref), r = std::move(right.ref)](const Table& table, size_t row) {
            const int64_t a = l(table, row);
            const int64_t b = r(table, row);
            return op == 0 ? a + b : op == 1 ? a - b : a * b;
          }};
}

Table RandomTable(dbase::Rng& rng, size_t rows) {
  Table table("rand");
  for (const char* name : {"a", "b", "c"}) {
    std::vector<int64_t> values(rows);
    for (auto& v : values) {
      v = rng.UniformInt(-50, 50);
    }
    EXPECT_TRUE(table.AddColumn(name, Column::Ints(std::move(values))).ok());
  }
  return table;
}

class ExprPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprPropertyTest, ArithmeticMatchesDirectEvaluation) {
  dbase::Rng rng(GetParam());
  Table table = RandomTable(rng, 64);
  for (int trial = 0; trial < 20; ++trial) {
    IntExpr gen = RandomIntExpr(rng, 3);
    auto bound = gen.expr->Bind(table);
    ASSERT_TRUE(bound.ok());
    for (size_t row = 0; row < table.NumRows(); row += 7) {
      // Direct evaluation through a second bound copy must agree — Bind
      // must be pure and evaluation deterministic.
      auto bound2 = gen.expr->Bind(table);
      ASSERT_TRUE(bound2.ok());
      EXPECT_EQ((*bound)->Eval(table, row).i, (*bound2)->Eval(table, row).i);
      // The reference evaluator was built alongside the tree and shares no
      // code with Expr::Eval — the two interpreters must agree.
      EXPECT_EQ((*bound)->Eval(table, row).i, gen.ref(table, row));
    }
  }
}

TEST_P(ExprPropertyTest, DeMorganHoldsForRandomPredicates) {
  dbase::Rng rng(GetParam() ^ 0xDEAD);
  Table table = RandomTable(rng, 64);
  for (int trial = 0; trial < 20; ++trial) {
    ExprPtr p = dsql::Lt(RandomIntExpr(rng, 2).expr, RandomIntExpr(rng, 2).expr);
    ExprPtr q = dsql::Ge(RandomIntExpr(rng, 2).expr, RandomIntExpr(rng, 2).expr);
    // !(p && q) == (!p || !q)
    ExprPtr lhs = dsql::Not(dsql::And(p, q));
    ExprPtr rhs = dsql::Or(dsql::Not(p), dsql::Not(q));
    auto bound_lhs = lhs->Bind(table);
    auto bound_rhs = rhs->Bind(table);
    ASSERT_TRUE(bound_lhs.ok() && bound_rhs.ok());
    for (size_t row = 0; row < table.NumRows(); ++row) {
      EXPECT_EQ((*bound_lhs)->EvalBool(table, row), (*bound_rhs)->EvalBool(table, row));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprPropertyTest, ::testing::Values(1, 2, 3, 4, 5, 8, 13));

// -------------------------------------------------------- Operator algebra

class OperatorLawTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OperatorLawTest, FilterConjunctionEqualsSequentialFilters) {
  dbase::Rng rng(GetParam());
  Table table = RandomTable(rng, 200);
  ExprPtr p = dsql::Gt(Col("a"), Lit(int64_t{0}));
  ExprPtr q = dsql::Lt(Col("b"), Lit(int64_t{10}));

  auto combined = dsql::Filter(table, dsql::And(p, q));
  auto first = dsql::Filter(table, p);
  ASSERT_TRUE(first.ok());
  auto sequential = dsql::Filter(*first, q);
  ASSERT_TRUE(combined.ok() && sequential.ok());
  EXPECT_EQ(combined->ToCsv(), sequential->ToCsv());
}

TEST_P(OperatorLawTest, ProjectIsIdempotent) {
  dbase::Rng rng(GetParam() ^ 0xBEEF);
  Table table = RandomTable(rng, 50);
  auto once = dsql::Project(table, {"c", "a"});
  ASSERT_TRUE(once.ok());
  auto twice = dsql::Project(*once, {"c", "a"});
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once->ToCsv(), twice->ToCsv());
}

TEST_P(OperatorLawTest, AggregateDistributesOverConcat) {
  dbase::Rng rng(GetParam() ^ 0xF00D);
  Table left = RandomTable(rng, 80);
  Table right = RandomTable(rng, 120);
  auto whole = dsql::Concat({left, right});
  ASSERT_TRUE(whole.ok());

  const std::vector<dsql::AggSpec> aggs = {{dsql::AggOp::kSum, "b", "total"}};
  auto direct = dsql::GroupAggregate(*whole, {"a"}, aggs);

  auto agg_left = dsql::GroupAggregate(left, {"a"}, aggs);
  auto agg_right = dsql::GroupAggregate(right, {"a"}, aggs);
  ASSERT_TRUE(agg_left.ok() && agg_right.ok());
  auto partials = dsql::Concat({*agg_left, *agg_right});
  ASSERT_TRUE(partials.ok());
  auto merged = dsql::GroupAggregate(*partials, {"a"}, {{dsql::AggOp::kSum, "total", "total"}});
  ASSERT_TRUE(direct.ok() && merged.ok());

  // Order-insensitive comparison: sort both by the group key.
  auto sorted_direct = dsql::SortBy(*direct, {{"a", false}});
  auto sorted_merged = dsql::SortBy(*merged, {{"a", false}});
  ASSERT_TRUE(sorted_direct.ok() && sorted_merged.ok());
  EXPECT_EQ(sorted_direct->ToCsv(), sorted_merged->ToCsv());
}

TEST_P(OperatorLawTest, JoinCommutesWithFilterOnProbeColumns) {
  dbase::Rng rng(GetParam() ^ 0xCAFE);
  Table probe = RandomTable(rng, 150);
  Table build("dim");
  std::vector<int64_t> keys;
  std::vector<std::string> labels;
  for (int64_t k = -50; k <= 50; ++k) {
    keys.push_back(k);
    labels.push_back("L" + std::to_string(k));
  }
  ASSERT_TRUE(build.AddColumn("k", Column::Ints(std::move(keys))).ok());
  ASSERT_TRUE(build.AddColumn("label", Column::Strings(std::move(labels))).ok());

  ExprPtr pred = dsql::Gt(Col("b"), Lit(int64_t{5}));
  auto filter_then_join_input = dsql::Filter(probe, pred);
  ASSERT_TRUE(filter_then_join_input.ok());
  auto filter_then_join = dsql::HashJoin(*filter_then_join_input, "a", build, "k");
  auto join_first = dsql::HashJoin(probe, "a", build, "k");
  ASSERT_TRUE(join_first.ok());
  auto join_then_filter = dsql::Filter(*join_first, pred);
  ASSERT_TRUE(filter_then_join.ok() && join_then_filter.ok());
  EXPECT_EQ(filter_then_join->ToCsv(), join_then_filter->ToCsv());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorLawTest, ::testing::Values(11, 22, 33, 44, 55));

// ------------------------------------------------------ Simulator laws

TEST(SimConservationTest, EverySubmittedJobCompletes) {
  dbase::Rng rng(7);
  dsim::EventQueue queue;
  dsim::FifoServer server(&queue, 3);
  int completed = 0;
  constexpr int kJobs = 500;
  for (int i = 0; i < kJobs; ++i) {
    queue.ScheduleAt(static_cast<dbase::Micros>(rng.NextBounded(10000)), [&] {
      server.Submit(static_cast<dbase::Micros>(1 + rng.NextBounded(50)),
                    [&](dbase::Micros, dbase::Micros) { ++completed; });
    });
  }
  queue.RunAll();
  EXPECT_EQ(completed, kJobs);
  EXPECT_EQ(server.total_submitted(), static_cast<uint64_t>(kJobs));
  EXPECT_EQ(server.total_completed(), static_cast<uint64_t>(kJobs));
  EXPECT_EQ(server.busy(), 0);
  EXPECT_EQ(server.queue_len(), 0u);
}

TEST(SimConservationTest, FifoStartOrderMatchesSubmitOrder) {
  dsim::EventQueue queue;
  dsim::FifoServer server(&queue, 2);
  std::vector<int> start_order;
  for (int i = 0; i < 20; ++i) {
    queue.ScheduleAt(0, [&, i] {
      server.Submit(10 + i, [&, i](dbase::Micros, dbase::Micros) {
        start_order.push_back(i);
      });
    });
  }
  queue.RunAll();
  // Completion order may interleave, but each job's completion implies its
  // start; with deterministic service times increasing in i, starts are
  // FIFO: verify the first two completions are jobs 0 and 1.
  ASSERT_GE(start_order.size(), 2u);
  EXPECT_EQ(start_order[0], 0);
  EXPECT_EQ(start_order[1], 1);
}

TEST(SimConservationTest, CapacityChangesLoseNoWork) {
  dbase::Rng rng(21);
  dsim::EventQueue queue;
  dsim::FifoServer server(&queue, 1);
  int completed = 0;
  constexpr int kJobs = 300;
  for (int i = 0; i < kJobs; ++i) {
    queue.ScheduleAt(static_cast<dbase::Micros>(i * 5), [&] {
      server.Submit(40, [&](dbase::Micros, dbase::Micros) { ++completed; });
    });
  }
  // Capacity oscillates while work is in flight.
  for (int t = 0; t < 20; ++t) {
    queue.ScheduleAt(t * 100, [&, t] { server.SetCapacity(1 + t % 4); });
  }
  queue.RunAll();
  EXPECT_EQ(completed, kJobs);
}

TEST(SimConservationTest, SsbGeneratorScalesLinearly) {
  dsql::SsbConfig small;
  small.lineorder_rows = 1000;
  dsql::SsbConfig large = small;
  large.lineorder_rows = 4000;
  EXPECT_EQ(dsql::GenerateSsb(small).lineorder.NumRows(), 1000u);
  EXPECT_EQ(dsql::GenerateSsb(large).lineorder.NumRows(), 4000u);
  // Same seed ⇒ dimension tables identical across scales.
  EXPECT_EQ(dsql::GenerateSsb(small).part, dsql::GenerateSsb(large).part);
}

// -------------------------------------------------- Marshalling layering

TEST(MarshalLayeringTest, NestedMarshalledPayloadsSurvive) {
  // A marshalled set list used as item *data* inside another set list must
  // survive the outer round trip bit-exactly (compositions nest payloads
  // this way when functions exchange structured data).
  dfunc::DataSetList inner;
  inner.push_back(dfunc::DataSet{"inner", {dfunc::DataItem{"k", std::string("\0\x01\xff", 3)}}});
  const std::string inner_bytes = dfunc::MarshalSets(inner);

  dfunc::DataSetList outer;
  outer.push_back(dfunc::DataSet{"outer", {dfunc::DataItem{"payload", inner_bytes}}});
  auto outer_round = dfunc::UnmarshalSets(dfunc::MarshalSets(outer));
  ASSERT_TRUE(outer_round.ok());
  auto inner_round = dfunc::UnmarshalSets((*outer_round)[0].items[0].data);
  ASSERT_TRUE(inner_round.ok());
  EXPECT_EQ(*inner_round, inner);
}

}  // namespace
