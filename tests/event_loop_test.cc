// Tests for dbase::EventLoop: fd readiness dispatch, cross-thread Post,
// one-shot timers with cancellation, and clean Stop semantics.
#include "src/base/event_loop.h"

#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "src/base/clock.h"
#include "src/base/thread.h"

namespace dbase {
namespace {

std::unique_ptr<EventLoop> MustCreate() {
  auto loop = EventLoop::Create();
  EXPECT_TRUE(loop.ok()) << loop.status().ToString();
  return std::move(loop).value();
}

TEST(EventLoopTest, PostRunsOnLoopThread) {
  auto loop = MustCreate();
  std::thread::id loop_id;
  Latch ran(1);
  JoiningThread thread("loop", [&] { loop->Run(); });
  loop->Post([&] {
    loop_id = std::this_thread::get_id();
    EXPECT_TRUE(loop->IsLoopThread());
    ran.CountDown();
  });
  ASSERT_TRUE(ran.WaitFor(5 * kMicrosPerSecond));
  EXPECT_FALSE(loop->IsLoopThread());
  loop->Stop();
  thread.Join();
  EXPECT_NE(loop_id, std::this_thread::get_id());
}

TEST(EventLoopTest, FdReadinessDispatched) {
  auto loop = MustCreate();
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);

  std::string received;
  Latch got(1);
  ASSERT_TRUE(loop->Add(fds[0], EPOLLIN, [&](uint32_t events) {
                    EXPECT_TRUE(events & EPOLLIN);
                    char buffer[64];
                    const ssize_t n = read(fds[0], buffer, sizeof(buffer));
                    ASSERT_GT(n, 0);
                    received.assign(buffer, static_cast<size_t>(n));
                    got.CountDown();
                  }).ok());

  JoiningThread thread("loop", [&] { loop->Run(); });
  ASSERT_EQ(write(fds[1], "ping", 4), 4);
  ASSERT_TRUE(got.WaitFor(5 * kMicrosPerSecond));
  loop->Stop();
  thread.Join();
  EXPECT_EQ(received, "ping");
  loop->Remove(fds[0]);
  close(fds[0]);
  close(fds[1]);
}

TEST(EventLoopTest, RemoveStopsDispatch) {
  auto loop = MustCreate();
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);

  std::atomic<int> fires{0};
  ASSERT_TRUE(loop->Add(fds[0], EPOLLIN, [&](uint32_t) {
                    ++fires;
                    char buffer[64];
                    [[maybe_unused]] ssize_t n = read(fds[0], buffer, sizeof(buffer));
                    // A callback may remove its own registration mid-dispatch.
                    loop->Remove(fds[0]);
                  }).ok());

  JoiningThread thread("loop", [&] { loop->Run(); });
  ASSERT_EQ(write(fds[1], "x", 1), 1);
  // Wait for the first fire, then write again: no further dispatch expected.
  Stopwatch watch;
  while (fires.load() == 0 && watch.ElapsedMicros() < 5 * kMicrosPerSecond) {
    std::this_thread::yield();
  }
  ASSERT_EQ(fires.load(), 1);
  ASSERT_EQ(write(fds[1], "y", 1), 1);
  Latch settled(1);
  loop->Post([&] { settled.CountDown(); });
  ASSERT_TRUE(settled.WaitFor(5 * kMicrosPerSecond));
  EXPECT_EQ(fires.load(), 1);
  loop->Stop();
  thread.Join();
  close(fds[0]);
  close(fds[1]);
}

TEST(EventLoopTest, TimerFiresAfterDelay) {
  auto loop = MustCreate();
  Latch fired(1);
  Stopwatch watch;
  Micros elapsed = 0;
  loop->Post([&] {
    loop->AddTimer(20 * kMicrosPerMilli, [&] {
      elapsed = watch.ElapsedMicros();
      fired.CountDown();
    });
  });
  JoiningThread thread("loop", [&] { loop->Run(); });
  ASSERT_TRUE(fired.WaitFor(5 * kMicrosPerSecond));
  loop->Stop();
  thread.Join();
  EXPECT_GE(elapsed, 20 * kMicrosPerMilli);
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  auto loop = MustCreate();
  std::atomic<bool> cancelled_fired{false};
  Latch later_fired(1);
  loop->Post([&] {
    const EventLoop::TimerId id =
        loop->AddTimer(10 * kMicrosPerMilli, [&] { cancelled_fired = true; });
    loop->CancelTimer(id);
    // A later timer proves the heap kept running past the cancelled slot.
    loop->AddTimer(30 * kMicrosPerMilli, [&] { later_fired.CountDown(); });
  });
  JoiningThread thread("loop", [&] { loop->Run(); });
  ASSERT_TRUE(later_fired.WaitFor(5 * kMicrosPerSecond));
  loop->Stop();
  thread.Join();
  EXPECT_FALSE(cancelled_fired.load());
}

TEST(EventLoopTest, StopWakesABlockedRun) {
  auto loop = MustCreate();
  Latch finished(1);
  JoiningThread thread("loop", [&] {
    loop->Run();  // No fds, no timers: blocks until woken.
    finished.CountDown();
  });
  loop->Stop();
  EXPECT_TRUE(finished.WaitFor(5 * kMicrosPerSecond));
  thread.Join();
}

}  // namespace
}  // namespace dbase
