// Tests for the columnar query engine: column/table model, serialization,
// expressions, every operator, the SSB generator, and the four SSB queries
// verified against an independent naive row-store reference executor (also
// whole-table vs. partitioned-and-merged equivalence).
#include <gtest/gtest.h>

#include <map>

#include "src/sql/column.h"
#include "src/sql/expr.h"
#include "src/sql/operators.h"
#include "src/sql/ssb.h"
#include "src/sql/ssb_queries.h"

namespace dsql {
namespace {

Table MakeToyTable() {
  Table t("toy");
  EXPECT_TRUE(t.AddColumn("id", Column::Ints({1, 2, 3, 4, 5})).ok());
  EXPECT_TRUE(t.AddColumn("group", Column::Strings({"a", "b", "a", "b", "a"})).ok());
  EXPECT_TRUE(t.AddColumn("value", Column::Ints({10, 20, 30, 40, 50})).ok());
  return t;
}

// ------------------------------------------------------------------ Column

TEST(ColumnTest, TypedAppendAndAccess) {
  Column ints(ColumnType::kInt64);
  ints.AppendInt(7);
  EXPECT_EQ(ints.size(), 1u);
  EXPECT_EQ(ints.IntAt(0), 7);
  Column strs(ColumnType::kString);
  strs.AppendString("x");
  EXPECT_EQ(strs.StringAt(0), "x");
}

TEST(ColumnTest, Gather) {
  Column c = Column::Ints({10, 11, 12, 13});
  Column picked = c.Gather({3, 1});
  EXPECT_EQ(picked.ints(), (std::vector<int64_t>{13, 11}));
}

TEST(TableTest, AddColumnValidation) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", Column::Ints({1, 2})).ok());
  EXPECT_FALSE(t.AddColumn("a", Column::Ints({3, 4})).ok());  // Duplicate.
  EXPECT_FALSE(t.AddColumn("b", Column::Ints({1})).ok());     // Length.
  EXPECT_TRUE(t.AddColumn("b", Column::Strings({"x", "y"})).ok());
  EXPECT_EQ(t.NumColumns(), 2u);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TableTest, GetColumn) {
  Table t = MakeToyTable();
  ASSERT_TRUE(t.GetColumn("value").ok());
  EXPECT_FALSE(t.GetColumn("missing").ok());
  EXPECT_TRUE(t.HasColumn("group"));
}

TEST(TableTest, ToCsv) {
  Table t = MakeToyTable();
  const std::string csv = t.ToCsv(2);
  EXPECT_EQ(csv, "id,group,value\n1,a,10\n2,b,20\n");
}

TEST(TableTest, SerializeRoundTrip) {
  Table t = MakeToyTable();
  auto round = DeserializeTable(SerializeTable(t));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(*round, t);
}

TEST(TableTest, SerializeRejectsCorruption) {
  const std::string bytes = SerializeTable(MakeToyTable());
  EXPECT_FALSE(DeserializeTable(bytes.substr(0, bytes.size() / 2)).ok());
  EXPECT_FALSE(DeserializeTable(bytes + "junk").ok());
  std::string bad = bytes;
  bad[0] = 'x';
  EXPECT_FALSE(DeserializeTable(bad).ok());
  EXPECT_FALSE(DeserializeTable("").ok());
}

// ---------------------------------------------------------------------- Expr

TEST(ExprTest, LiteralAndColumnEval) {
  Table t = MakeToyTable();
  auto bound = Col("value")->Bind(t);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->Eval(t, 2).i, 30);
  auto lit = Lit("hello")->Bind(t);
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ((*lit)->Eval(t, 0).s, "hello");
}

TEST(ExprTest, BindRejectsUnknownColumn) {
  Table t = MakeToyTable();
  EXPECT_FALSE(Col("ghost")->Bind(t).ok());
  EXPECT_FALSE(And(Eq(Col("id"), Lit(int64_t{1})), Eq(Col("ghost"), Lit(int64_t{2})))
                   ->Bind(t)
                   .ok());
}

TEST(ExprTest, Comparisons) {
  Table t = MakeToyTable();
  struct Case {
    ExprPtr expr;
    std::vector<bool> expected;  // Per row.
  };
  const std::vector<Case> cases = {
      {Eq(Col("id"), Lit(int64_t{3})), {false, false, true, false, false}},
      {Ne(Col("id"), Lit(int64_t{3})), {true, true, false, true, true}},
      {Lt(Col("id"), Lit(int64_t{3})), {true, true, false, false, false}},
      {Le(Col("id"), Lit(int64_t{3})), {true, true, true, false, false}},
      {Gt(Col("id"), Lit(int64_t{3})), {false, false, false, true, true}},
      {Ge(Col("id"), Lit(int64_t{3})), {false, false, true, true, true}},
      {Eq(Col("group"), Lit("a")), {true, false, true, false, true}},
  };
  for (const auto& c : cases) {
    auto bound = c.expr->Bind(t);
    ASSERT_TRUE(bound.ok());
    for (size_t r = 0; r < c.expected.size(); ++r) {
      EXPECT_EQ((*bound)->EvalBool(t, r), c.expected[r]) << c.expr->ToString() << " row " << r;
    }
  }
}

TEST(ExprTest, LogicArithmeticInSet) {
  Table t = MakeToyTable();
  auto expr = And(Between(Col("id"), 2, 4), Not(Eq(Col("group"), Lit("b"))));
  auto bound = expr->Bind(t);
  ASSERT_TRUE(bound.ok());
  // Rows with 2<=id<=4 and group != b → row 2 (id 3).
  EXPECT_FALSE((*bound)->EvalBool(t, 0));
  EXPECT_TRUE((*bound)->EvalBool(t, 2));
  EXPECT_FALSE((*bound)->EvalBool(t, 3));

  auto arith = Add(Mul(Col("id"), Lit(int64_t{100})), Sub(Col("value"), Lit(int64_t{10})));
  auto arith_bound = arith->Bind(t);
  ASSERT_TRUE(arith_bound.ok());
  EXPECT_EQ((*arith_bound)->Eval(t, 1).i, 200 + 10);

  auto in = In(Col("id"), {Value::Int(1), Value::Int(5)});
  auto in_bound = in->Bind(t);
  ASSERT_TRUE(in_bound.ok());
  EXPECT_TRUE((*in_bound)->EvalBool(t, 0));
  EXPECT_FALSE((*in_bound)->EvalBool(t, 1));
  EXPECT_TRUE((*in_bound)->EvalBool(t, 4));

  auto or_expr = Or(Eq(Col("id"), Lit(int64_t{1})), Eq(Col("id"), Lit(int64_t{2})));
  auto or_bound = or_expr->Bind(t);
  ASSERT_TRUE(or_bound.ok());
  EXPECT_TRUE((*or_bound)->EvalBool(t, 0));
  EXPECT_TRUE((*or_bound)->EvalBool(t, 1));
  EXPECT_FALSE((*or_bound)->EvalBool(t, 2));
}

TEST(ExprTest, ToStringIsReadable) {
  auto expr = And(Between(Col("d"), 1, 3), Lt(Col("q"), Lit(int64_t{25})));
  EXPECT_EQ(expr->ToString(), "(((d >= 1) AND (d <= 3)) AND (q < 25))");
}

// ----------------------------------------------------------------- Operators

TEST(OperatorTest, Filter) {
  Table t = MakeToyTable();
  auto filtered = Filter(t, Eq(Col("group"), Lit("a")));
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->NumRows(), 3u);
  EXPECT_EQ(filtered->GetColumn("id").value()->ints(), (std::vector<int64_t>{1, 3, 5}));
}

TEST(OperatorTest, FilterEmptyResult) {
  Table t = MakeToyTable();
  auto filtered = Filter(t, Eq(Col("id"), Lit(int64_t{99})));
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->NumRows(), 0u);
  EXPECT_EQ(filtered->NumColumns(), t.NumColumns());
}

TEST(OperatorTest, Project) {
  Table t = MakeToyTable();
  auto projected = Project(t, {"value", "id"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->NumColumns(), 2u);
  EXPECT_EQ(projected->columns()[0].first, "value");
  EXPECT_FALSE(Project(t, {"ghost"}).ok());
}

TEST(OperatorTest, WithComputedColumn) {
  Table t = MakeToyTable();
  auto computed = WithComputedColumn(t, "double_value", Mul(Col("value"), Lit(int64_t{2})));
  ASSERT_TRUE(computed.ok());
  EXPECT_EQ(computed->GetColumn("double_value").value()->ints(),
            (std::vector<int64_t>{20, 40, 60, 80, 100}));
}

TEST(OperatorTest, HashJoinInner) {
  Table left("facts");
  ASSERT_TRUE(left.AddColumn("fk", Column::Ints({1, 2, 2, 9})).ok());
  ASSERT_TRUE(left.AddColumn("x", Column::Ints({100, 200, 201, 900})).ok());
  Table right("dim");
  ASSERT_TRUE(right.AddColumn("pk", Column::Ints({1, 2, 3})).ok());
  ASSERT_TRUE(right.AddColumn("label", Column::Strings({"one", "two", "three"})).ok());

  auto joined = HashJoin(left, "fk", right, "pk");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 3u);  // fk=9 drops, fk=2 matches twice.
  EXPECT_EQ(joined->GetColumn("label").value()->strings(),
            (std::vector<std::string>{"one", "two", "two"}));
  EXPECT_EQ(joined->GetColumn("x").value()->ints(), (std::vector<int64_t>{100, 200, 201}));
}

TEST(OperatorTest, HashJoinDuplicateBuildKeys) {
  Table left("l");
  ASSERT_TRUE(left.AddColumn("k", Column::Ints({1})).ok());
  Table right("r");
  ASSERT_TRUE(right.AddColumn("k2", Column::Ints({1, 1})).ok());
  ASSERT_TRUE(right.AddColumn("v", Column::Ints({5, 6})).ok());
  auto joined = HashJoin(left, "k", right, "k2");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 2u);
}

TEST(OperatorTest, HashJoinErrors) {
  Table t = MakeToyTable();
  EXPECT_FALSE(HashJoin(t, "ghost", t, "id").ok());
  EXPECT_FALSE(HashJoin(t, "group", t, "id").ok());  // String key.
}

TEST(OperatorTest, GroupAggregate) {
  Table t = MakeToyTable();
  auto agg = GroupAggregate(t, {"group"},
                            {{AggOp::kSum, "value", "total"},
                             {AggOp::kCount, "", "n"},
                             {AggOp::kMin, "value", "lo"},
                             {AggOp::kMax, "value", "hi"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->NumRows(), 2u);
  // First-seen group order: a then b.
  EXPECT_EQ(agg->GetColumn("group").value()->strings(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(agg->GetColumn("total").value()->ints(), (std::vector<int64_t>{90, 60}));
  EXPECT_EQ(agg->GetColumn("n").value()->ints(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(agg->GetColumn("lo").value()->ints(), (std::vector<int64_t>{10, 20}));
  EXPECT_EQ(agg->GetColumn("hi").value()->ints(), (std::vector<int64_t>{50, 40}));
}

TEST(OperatorTest, FullTableAggregate) {
  Table t = MakeToyTable();
  auto agg = GroupAggregate(t, {}, {{AggOp::kSum, "value", "total"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->NumRows(), 1u);
  EXPECT_EQ(agg->GetColumn("total").value()->IntAt(0), 150);

  Table empty("e");
  ASSERT_TRUE(empty.AddColumn("value", Column::Ints({})).ok());
  auto empty_agg = GroupAggregate(empty, {}, {{AggOp::kSum, "value", "total"}});
  ASSERT_TRUE(empty_agg.ok());
  ASSERT_EQ(empty_agg->NumRows(), 1u);
  EXPECT_EQ(empty_agg->GetColumn("total").value()->IntAt(0), 0);
}

TEST(OperatorTest, SortByMultipleKeys) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", Column::Ints({2, 1, 2, 1})).ok());
  ASSERT_TRUE(t.AddColumn("b", Column::Strings({"x", "y", "w", "z"})).ok());
  auto sorted = SortBy(t, {{"a", false}, {"b", true}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->GetColumn("a").value()->ints(), (std::vector<int64_t>{1, 1, 2, 2}));
  EXPECT_EQ(sorted->GetColumn("b").value()->strings(),
            (std::vector<std::string>{"z", "y", "x", "w"}));
}

TEST(OperatorTest, Concat) {
  Table t = MakeToyTable();
  auto doubled = Concat({t, t});
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled->NumRows(), 10u);
  EXPECT_FALSE(Concat({}).ok());

  Table other("o");
  ASSERT_TRUE(other.AddColumn("different", Column::Ints({1})).ok());
  EXPECT_FALSE(Concat({t, other}).ok());
}

// --------------------------------------------------------------------- SSB

class SsbTest : public ::testing::Test {
 protected:
  static SsbConfig SmallConfig() {
    SsbConfig config;
    config.lineorder_rows = 20000;
    config.customer_rows = 200;
    config.supplier_rows = 80;
    config.part_rows = 150;
    config.seed = 99;
    return config;
  }
};

TEST_F(SsbTest, GeneratorShapes) {
  const SsbData data = GenerateSsb(SmallConfig());
  EXPECT_EQ(data.lineorder.NumRows(), 20000u);
  EXPECT_EQ(data.customer.NumRows(), 200u);
  EXPECT_EQ(data.supplier.NumRows(), 80u);
  EXPECT_EQ(data.part.NumRows(), 150u);
  EXPECT_EQ(data.date.NumRows(), 7u * 12 * 28);
  EXPECT_GT(data.TotalBytes(), 0u);
}

TEST_F(SsbTest, GeneratorDeterministic) {
  const SsbData a = GenerateSsb(SmallConfig());
  const SsbData b = GenerateSsb(SmallConfig());
  EXPECT_EQ(a.lineorder, b.lineorder);
  EXPECT_EQ(a.part, b.part);
}

TEST_F(SsbTest, ReferentialIntegrity) {
  const SsbData data = GenerateSsb(SmallConfig());
  std::map<int64_t, bool> date_keys;
  for (int64_t k : data.date.GetColumn("d_datekey").value()->ints()) {
    date_keys[k] = true;
  }
  const auto& custkeys = data.lineorder.GetColumn("lo_custkey").value()->ints();
  const auto& suppkeys = data.lineorder.GetColumn("lo_suppkey").value()->ints();
  const auto& partkeys = data.lineorder.GetColumn("lo_partkey").value()->ints();
  const auto& orderdates = data.lineorder.GetColumn("lo_orderdate").value()->ints();
  for (size_t r = 0; r < data.lineorder.NumRows(); ++r) {
    ASSERT_GE(custkeys[r], 1);
    ASSERT_LE(custkeys[r], 200);
    ASSERT_GE(suppkeys[r], 1);
    ASSERT_LE(suppkeys[r], 80);
    ASSERT_GE(partkeys[r], 1);
    ASSERT_LE(partkeys[r], 150);
    ASSERT_TRUE(date_keys.count(orderdates[r])) << orderdates[r];
  }
}

TEST_F(SsbTest, RevenueConsistentWithDiscount) {
  const SsbData data = GenerateSsb(SmallConfig());
  const auto& price = data.lineorder.GetColumn("lo_extendedprice").value()->ints();
  const auto& discount = data.lineorder.GetColumn("lo_discount").value()->ints();
  const auto& revenue = data.lineorder.GetColumn("lo_revenue").value()->ints();
  for (size_t r = 0; r < 1000; ++r) {
    EXPECT_EQ(revenue[r], price[r] * (100 - discount[r]) / 100);
  }
}

TEST_F(SsbTest, PartitionCoversAllRows) {
  const SsbData data = GenerateSsb(SmallConfig());
  auto parts = PartitionLineorder(data.lineorder, 7);
  size_t total = 0;
  for (const auto& p : parts) {
    total += p.NumRows();
    EXPECT_EQ(p.NumColumns(), data.lineorder.NumColumns());
  }
  EXPECT_EQ(total, data.lineorder.NumRows());
  auto merged = Concat(parts);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->GetColumn("lo_orderkey").value()->ints(),
            data.lineorder.GetColumn("lo_orderkey").value()->ints());
}

// --- Reference executor: naive row-at-a-time implementations -------------

int64_t ReferenceQ11(const SsbData& d) {
  std::map<int64_t, int64_t> year_of;
  const auto& datekey = d.date.GetColumn("d_datekey").value()->ints();
  const auto& year = d.date.GetColumn("d_year").value()->ints();
  for (size_t i = 0; i < datekey.size(); ++i) {
    year_of[datekey[i]] = year[i];
  }
  const auto& orderdate = d.lineorder.GetColumn("lo_orderdate").value()->ints();
  const auto& discount = d.lineorder.GetColumn("lo_discount").value()->ints();
  const auto& quantity = d.lineorder.GetColumn("lo_quantity").value()->ints();
  const auto& price = d.lineorder.GetColumn("lo_extendedprice").value()->ints();
  int64_t revenue = 0;
  for (size_t r = 0; r < d.lineorder.NumRows(); ++r) {
    if (year_of[orderdate[r]] == 1993 && discount[r] >= 1 && discount[r] <= 3 &&
        quantity[r] < 25) {
      revenue += price[r] * discount[r];
    }
  }
  return revenue;
}

// Reference Q4.1: map over joins by hand.
std::map<std::pair<int64_t, std::string>, int64_t> ReferenceQ41(const SsbData& d) {
  std::map<int64_t, int64_t> year_of;
  {
    const auto& k = d.date.GetColumn("d_datekey").value()->ints();
    const auto& y = d.date.GetColumn("d_year").value()->ints();
    for (size_t i = 0; i < k.size(); ++i) {
      year_of[k[i]] = y[i];
    }
  }
  std::map<int64_t, std::pair<std::string, std::string>> cust;  // key → (region, nation)
  {
    const auto& k = d.customer.GetColumn("c_custkey").value()->ints();
    const auto& region = d.customer.GetColumn("c_region").value()->strings();
    const auto& nation = d.customer.GetColumn("c_nation").value()->strings();
    for (size_t i = 0; i < k.size(); ++i) {
      cust[k[i]] = {region[i], nation[i]};
    }
  }
  std::map<int64_t, std::string> supp_region;
  {
    const auto& k = d.supplier.GetColumn("s_suppkey").value()->ints();
    const auto& region = d.supplier.GetColumn("s_region").value()->strings();
    for (size_t i = 0; i < k.size(); ++i) {
      supp_region[k[i]] = region[i];
    }
  }
  std::map<int64_t, std::string> part_mfgr;
  {
    const auto& k = d.part.GetColumn("p_partkey").value()->ints();
    const auto& mfgr = d.part.GetColumn("p_mfgr").value()->strings();
    for (size_t i = 0; i < k.size(); ++i) {
      part_mfgr[k[i]] = mfgr[i];
    }
  }
  std::map<std::pair<int64_t, std::string>, int64_t> profit;
  const auto& lo_cust = d.lineorder.GetColumn("lo_custkey").value()->ints();
  const auto& lo_supp = d.lineorder.GetColumn("lo_suppkey").value()->ints();
  const auto& lo_part = d.lineorder.GetColumn("lo_partkey").value()->ints();
  const auto& lo_date = d.lineorder.GetColumn("lo_orderdate").value()->ints();
  const auto& lo_rev = d.lineorder.GetColumn("lo_revenue").value()->ints();
  const auto& lo_cost = d.lineorder.GetColumn("lo_supplycost").value()->ints();
  for (size_t r = 0; r < d.lineorder.NumRows(); ++r) {
    const auto& c = cust[lo_cust[r]];
    if (c.first != "AMERICA" || supp_region[lo_supp[r]] != "AMERICA") {
      continue;
    }
    const std::string& mfgr = part_mfgr[lo_part[r]];
    if (mfgr != "MFGR#1" && mfgr != "MFGR#2") {
      continue;
    }
    profit[{year_of[lo_date[r]], c.second}] += lo_rev[r] - lo_cost[r];
  }
  return profit;
}

TEST_F(SsbTest, Q11MatchesReference) {
  const SsbData data = GenerateSsb(SmallConfig());
  auto result = RunQ11(data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->GetColumn("revenue").value()->IntAt(0), ReferenceQ11(data));
}

TEST_F(SsbTest, Q21ShapeAndOrdering) {
  const SsbData data = GenerateSsb(SmallConfig());
  auto result = RunQ21(data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->HasColumn("d_year"));
  ASSERT_TRUE(result->HasColumn("p_brand1"));
  ASSERT_TRUE(result->HasColumn("revenue"));
  const auto& years = result->GetColumn("d_year").value()->ints();
  const auto& brands = result->GetColumn("p_brand1").value()->strings();
  for (size_t r = 1; r < result->NumRows(); ++r) {
    ASSERT_TRUE(years[r - 1] < years[r] ||
                (years[r - 1] == years[r] && brands[r - 1] <= brands[r]));
  }
}

TEST_F(SsbTest, Q31OrderingYearAscRevenueDesc) {
  const SsbData data = GenerateSsb(SmallConfig());
  auto result = RunQ31(data);
  ASSERT_TRUE(result.ok());
  const auto& years = result->GetColumn("d_year").value()->ints();
  const auto& revenue = result->GetColumn("revenue").value()->ints();
  for (size_t r = 1; r < result->NumRows(); ++r) {
    ASSERT_TRUE(years[r - 1] < years[r] ||
                (years[r - 1] == years[r] && revenue[r - 1] >= revenue[r]));
  }
  // Only ASIA nations appear.
  for (const auto& nation : result->GetColumn("c_nation").value()->strings()) {
    EXPECT_TRUE(nation == "CHINA" || nation == "INDIA" || nation == "INDONESIA" ||
                nation == "JAPAN" || nation == "VIETNAM")
        << nation;
  }
}

TEST_F(SsbTest, Q41MatchesReference) {
  const SsbData data = GenerateSsb(SmallConfig());
  auto result = RunQ41(data);
  ASSERT_TRUE(result.ok());
  const auto reference = ReferenceQ41(data);
  ASSERT_EQ(result->NumRows(), reference.size());
  const auto& years = result->GetColumn("d_year").value()->ints();
  const auto& nations = result->GetColumn("c_nation").value()->strings();
  const auto& profits = result->GetColumn("profit").value()->ints();
  for (size_t r = 0; r < result->NumRows(); ++r) {
    auto it = reference.find({years[r], nations[r]});
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(profits[r], it->second) << years[r] << "/" << nations[r];
  }
}

class SsbPartitionEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SsbPartitionEquivalenceTest, PartitionedEqualsWholeTable) {
  SsbConfig config;
  config.lineorder_rows = 12000;
  config.customer_rows = 150;
  config.supplier_rows = 60;
  config.part_rows = 120;
  config.seed = 1234;
  const SsbData data = GenerateSsb(config);
  const int query_id = GetParam();

  auto whole = RunQueryOnPartition(query_id, data.lineorder, data);
  ASSERT_TRUE(whole.ok());
  auto merged_whole = MergeQueryPartials(query_id, {*whole});
  ASSERT_TRUE(merged_whole.ok());

  std::vector<Table> partials;
  for (const auto& partition : PartitionLineorder(data.lineorder, 5)) {
    auto partial = RunQueryOnPartition(query_id, partition, data);
    ASSERT_TRUE(partial.ok());
    partials.push_back(std::move(partial).value());
  }
  auto merged = MergeQueryPartials(query_id, partials);
  ASSERT_TRUE(merged.ok());
  // Compare by CSV so table names are ignored.
  EXPECT_EQ(merged->ToCsv(), merged_whole->ToCsv());
}

INSTANTIATE_TEST_SUITE_P(AllQueries, SsbPartitionEquivalenceTest,
                         ::testing::ValuesIn(SsbQueryIds()),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "Q" + std::to_string(param_info.param);
                         });

TEST(SsbQueryTest, NamesAndIds) {
  EXPECT_EQ(SsbQueryIds().size(), 4u);
  EXPECT_EQ(SsbQueryName(11), "Query 1.1");
  EXPECT_EQ(SsbQueryName(41), "Query 4.1");
  EXPECT_FALSE(RunQueryOnPartition(99, Table("x"), SsbData{}).ok());
  EXPECT_FALSE(MergeQueryPartials(99, {Table("x")}).ok());
}

}  // namespace
}  // namespace dsql
