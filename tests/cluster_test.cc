// Tests for the cluster manager: cluster-wide registration, round-robin and
// least-loaded routing, correctness across nodes, and per-node accounting.
#include <gtest/gtest.h>

#include <numeric>

#include "src/base/clock.h"
#include "src/base/thread.h"
#include "src/func/builtins.h"
#include "src/http/services.h"
#include "src/runtime/cluster.h"

namespace dandelion {
namespace {

using dfunc::DataItem;
using dfunc::DataSet;
using dfunc::DataSetList;

Cluster::Config SmallClusterConfig(int nodes, LoadBalancePolicy policy) {
  Cluster::Config config;
  config.num_nodes = nodes;
  config.policy = policy;
  config.node_config.num_workers = 2;
  config.node_config.backend = IsolationBackend::kThread;
  config.node_config.sleep_for_modeled_latency = false;
  return config;
}

DataSetList EchoArgs(const std::string& value) {
  DataSetList args;
  args.push_back(DataSet{"in", {DataItem{"", value}}});
  return args;
}

constexpr const char* kIdDsl =
    "composition Id(in) => out { echo(in = all in) => (out = out); }";

TEST(ClusterTest, RegistrationReachesEveryNode) {
  Cluster cluster(SmallClusterConfig(3, LoadBalancePolicy::kRoundRobin));
  ASSERT_TRUE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(cluster.RegisterCompositionDsl(kIdDsl).ok());
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_TRUE(cluster.node(n).functions().Contains("echo"));
    EXPECT_TRUE(cluster.node(n).compositions().Contains("Id"));
  }
}

TEST(ClusterTest, CoreSplitsReportEveryNode) {
  Cluster::Config config = SmallClusterConfig(3, LoadBalancePolicy::kRoundRobin);
  config.node_config.num_workers = 4;
  config.node_config.initial_comm_workers = 1;
  Cluster cluster(config);
  const auto splits = cluster.CoreSplits();
  ASSERT_EQ(splits.size(), 3u);
  for (const auto& split : splits) {
    EXPECT_EQ(split.compute_workers + split.comm_workers, 4);
    EXPECT_EQ(split.comm_workers, 1);  // No control plane: the initial split.
  }
  // A node-local role shift is visible in the cluster-wide view.
  ASSERT_EQ(cluster.node(0).workers().ShiftWorkers(-1), -1);
  EXPECT_EQ(cluster.CoreSplits()[0].comm_workers, 2);
}

TEST(ClusterTest, RegistrationFailurePropagates) {
  Cluster cluster(SmallClusterConfig(2, LoadBalancePolicy::kRoundRobin));
  ASSERT_TRUE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  EXPECT_FALSE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
}

TEST(ClusterTest, RoundRobinSpreadsEvenly) {
  Cluster cluster(SmallClusterConfig(3, LoadBalancePolicy::kRoundRobin));
  ASSERT_TRUE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(cluster.RegisterCompositionDsl(kIdDsl).ok());

  for (int i = 0; i < 9; ++i) {
    auto routed = cluster.Invoke("Id", EchoArgs("x" + std::to_string(i)));
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    EXPECT_EQ(routed.node_index, i % 3);
  }
  const auto counts = cluster.InvocationsPerNode();
  EXPECT_EQ(counts, (std::vector<uint64_t>{3, 3, 3}));
}

TEST(ClusterTest, ResultsCorrectRegardlessOfNode) {
  Cluster cluster(SmallClusterConfig(4, LoadBalancePolicy::kRoundRobin));
  ASSERT_TRUE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(cluster.RegisterCompositionDsl(kIdDsl).ok());
  for (int i = 0; i < 12; ++i) {
    const std::string payload = "payload-" + std::to_string(i);
    auto routed = cluster.Invoke("Id", EchoArgs(payload));
    ASSERT_TRUE(routed.ok());
    EXPECT_EQ(routed.sets()[0].items[0].data, payload);
  }
}

TEST(ClusterTest, LeastLoadedAvoidsBusyNode) {
  Cluster cluster(SmallClusterConfig(2, LoadBalancePolicy::kLeastLoaded));
  ASSERT_TRUE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  // A deliberately slow function to occupy node capacity.
  ASSERT_TRUE(cluster
                  .RegisterFunction({.name = "slow",
                                     .body =
                                         [](dfunc::FunctionCtx& ctx) {
                                           dbase::SpinFor(50 * dbase::kMicrosPerMilli);
                                           return dfunc::EchoFunction(ctx);
                                         }})
                  .ok());
  ASSERT_TRUE(cluster.RegisterCompositionDsl(kIdDsl).ok());
  ASSERT_TRUE(cluster
                  .RegisterCompositionDsl(
                      "composition Slow(in) => out { slow(in = all in) => (out = out); }")
                  .ok());

  // First request picks node 0 (all empty) and stays in flight there.
  dbase::Latch slow_done(1);
  cluster.InvokeAsync("Slow", EchoArgs("occupy"),
                      [&](dbase::Result<DataSetList> result, int node) {
                        EXPECT_TRUE(result.ok());
                        EXPECT_EQ(node, 0);
                        slow_done.CountDown();
                      });
  // While node 0 is busy, least-loaded must route elsewhere.
  auto routed = cluster.Invoke("Id", EchoArgs("quick"));
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.node_index, 1);
  ASSERT_TRUE(slow_done.WaitFor(5 * dbase::kMicrosPerSecond));
}

TEST(ClusterTest, ForEachNodeConfiguresServices) {
  Cluster cluster(SmallClusterConfig(2, LoadBalancePolicy::kRoundRobin));
  int visited = 0;
  cluster.ForEachNode([&](Platform& node) {
    ++visited;
    node.mesh().Register("svc.internal", std::make_shared<dhttp::EchoService>());
  });
  EXPECT_EQ(visited, 2);
  EXPECT_TRUE(cluster.node(0).mesh().HasHost("svc.internal"));
  EXPECT_TRUE(cluster.node(1).mesh().HasHost("svc.internal"));
}

TEST(ClusterTest, UnknownCompositionFailsButReportsNode) {
  Cluster cluster(SmallClusterConfig(2, LoadBalancePolicy::kRoundRobin));
  auto routed = cluster.Invoke("Ghost", {});
  EXPECT_FALSE(routed.ok());
  EXPECT_GE(routed.node_index, 0);
}

TEST(ClusterTest, SingleNodeClusterWorks) {
  Cluster cluster(SmallClusterConfig(1, LoadBalancePolicy::kLeastLoaded));
  ASSERT_TRUE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(cluster.RegisterCompositionDsl(kIdDsl).ok());
  auto routed = cluster.Invoke("Id", EchoArgs("solo"));
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.node_index, 0);
}

TEST(ClusterTest, RoutedRequestCarriesDeadlineAndClass) {
  Cluster cluster(SmallClusterConfig(2, LoadBalancePolicy::kLeastLoaded));
  ASSERT_TRUE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(cluster.RegisterCompositionDsl(kIdDsl).ok());

  InvocationRequest request;
  request.composition = "Id";
  request.args = EchoArgs("routed");
  request.priority = PriorityClass::kBatch;
  request.deadline_us = InvocationRequest::DeadlineIn(5 * dbase::kMicrosPerSecond);
  auto routed = cluster.Invoke(std::move(request));
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ASSERT_GE(routed.node_index, 0);
  EXPECT_EQ(routed.sets()[0].items[0].data, "routed");

  // The serving node's dispatcher saw the request's class.
  uint64_t started = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    started += cluster.node(n).dispatcher_stats().invocations_started;
  }
  EXPECT_EQ(started, 1u);

  // A routed request whose deadline has already passed fails fast with
  // kDeadlineExceeded instead of hanging the caller.
  InvocationRequest late;
  late.composition = "Id";
  late.args = EchoArgs("late");
  late.deadline_us = 1;  // Monotonic epoch: long past.
  auto expired = cluster.Invoke(std::move(late));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), dbase::StatusCode::kDeadlineExceeded);
}

TEST(ClusterTest, ConcurrentInvocationsAcrossNodes) {
  Cluster cluster(SmallClusterConfig(3, LoadBalancePolicy::kRoundRobin));
  ASSERT_TRUE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(cluster.RegisterCompositionDsl(kIdDsl).ok());
  constexpr int kTotal = 48;
  dbase::Latch latch(kTotal);
  std::atomic<int> correct{0};
  for (int i = 0; i < kTotal; ++i) {
    cluster.InvokeAsync("Id", EchoArgs("v" + std::to_string(i)),
                        [&, i](dbase::Result<DataSetList> result, int) {
                          if (result.ok() &&
                              (*result)[0].items[0].data == "v" + std::to_string(i)) {
                            correct.fetch_add(1);
                          }
                          latch.CountDown();
                        });
  }
  ASSERT_TRUE(latch.WaitFor(30 * dbase::kMicrosPerSecond));
  EXPECT_EQ(correct.load(), kTotal);
  const auto counts = cluster.InvocationsPerNode();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), uint64_t{0}),
            static_cast<uint64_t>(kTotal));
  for (uint64_t count : counts) {
    EXPECT_EQ(count, static_cast<uint64_t>(kTotal / 3));
  }
}

TEST(ClusterTest, LocalitySticksToTheWarmNodeAndFallsBackForColdOnes) {
  Cluster cluster(SmallClusterConfig(2, LoadBalancePolicy::kLocality));
  ASSERT_TRUE(cluster.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(cluster
                  .RegisterFunction({.name = "slow",
                                     .body =
                                         [](dfunc::FunctionCtx& ctx) {
                                           dbase::SpinFor(80 * dbase::kMicrosPerMilli);
                                           return dfunc::EchoFunction(ctx);
                                         }})
                  .ok());
  ASSERT_TRUE(cluster.RegisterCompositionDsl(kIdDsl).ok());
  ASSERT_TRUE(cluster
                  .RegisterCompositionDsl(
                      "composition Sticky(in) => out { slow(in = all in) => (out = out); }")
                  .ok());

  // A composition never seen before has no affinity: the first invoke pays
  // the least-loaded scan (all idle → node 0) and warms that node.
  auto routed = cluster.Invoke("Sticky", EchoArgs("warm"));
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.node_index, 0);

  // Park an in-flight Sticky on the warm node.
  dbase::Latch parked(1);
  cluster.InvokeAsync("Sticky", EchoArgs("occupy"),
                      [&](dbase::Result<DataSetList> result, int node) {
                        EXPECT_TRUE(result.ok());
                        EXPECT_EQ(node, 0);
                        parked.CountDown();
                      });

  // A cold composition still load-balances: node 0 is busier, so Id's
  // first invoke lands on node 1 (and warms it for Id).
  routed = cluster.Invoke("Id", EchoArgs("cold"));
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.node_index, 1);

  // Sticky keeps going to its warm node even though node 1 is idle —
  // exactly the trade locality makes against pure least-loaded.
  routed = cluster.Invoke("Sticky", EchoArgs("again"));
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.node_index, 0);

  ASSERT_TRUE(parked.WaitFor(5 * dbase::kMicrosPerSecond));
}

}  // namespace
}  // namespace dandelion
