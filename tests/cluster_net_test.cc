// Distributed data-plane tests: real TCP node wire between a Cluster
// router and engine nodes (in-process NodeAgents and spawned
// dandelion_node daemons), covering remote invocation end-to-end,
// zero-copy accounting, cross-node shedding, peer-loss absorption via the
// retry taxonomy, gossip-driven membership (suspect → evict → rejoin),
// mesh calls carried over the wire, protocol hygiene against hostile
// frames, and the statz cluster section.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <libgen.h>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/base/thread.h"
#include "src/func/builtins.h"
#include "src/func/data.h"
#include "src/http/http_parser.h"
#include "src/http/sanitizer.h"
#include "src/http/services.h"
#include "src/net/wire.h"
#include "src/runtime/cluster.h"
#include "src/runtime/frontend.h"
#include "src/runtime/node_agent.h"
#include "src/runtime/platform.h"

namespace dandelion {
namespace {

using dfunc::DataItem;
using dfunc::DataSet;
using dfunc::DataSetList;

PlatformConfig FastPlatformConfig() {
  PlatformConfig config;
  config.num_workers = 2;
  config.backend = IsolationBackend::kThread;
  config.sleep_for_modeled_latency = false;
  return config;
}

DataSetList EchoArgs(std::string value) {
  DataSetList args;
  args.push_back(DataSet{"in", {DataItem{"", std::move(value)}}});
  return args;
}

// Holds an engine worker for a while before echoing — the occupier for
// shed and peer-loss scenarios.
dbase::Status NapEcho(dfunc::FunctionCtx& ctx) {
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  return dfunc::EchoFunction(ctx);
}

constexpr const char* kNodeDsl = R"(
composition Id(in) => out { echo(in = all in) => (out = out); }
composition Nap(in) => out { nap(in = all in) => (out = out); }
)";

// One in-process engine node: a Platform wrapped in a NodeAgent serving
// the dnet wire on an ephemeral loopback port.
class AgentNode {
 public:
  explicit AgentNode(NodeAgentConfig config = NodeAgentConfig{})
      : platform_(FastPlatformConfig()), agent_(&platform_, config) {
    EXPECT_TRUE(platform_.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
    EXPECT_TRUE(platform_.RegisterFunction({.name = "nap", .body = NapEcho}).ok());
    EXPECT_TRUE(platform_.RegisterCompositionDsl(kNodeDsl).ok());
    started_ = agent_.Start();
  }
  ~AgentNode() { agent_.Stop(); }

  bool skipped() const { return !started_.ok(); }
  std::string skip_reason() const { return started_.ToString(); }
  uint16_t port() const { return agent_.port(); }
  Platform& platform() { return platform_; }
  NodeAgent& agent() { return agent_; }

 private:
  Platform platform_;
  NodeAgent agent_;
  dbase::Status started_;
};

#define SKIP_WITHOUT_LOOPBACK(node)                                               \
  if ((node).skipped()) {                                                         \
    GTEST_SKIP() << "loopback sockets unavailable: " << (node).skip_reason();     \
  }

Cluster::Config RemoteClusterConfig(std::vector<Cluster::RemoteNode> remotes,
                                    LoadBalancePolicy policy) {
  Cluster::Config config;
  config.num_nodes = 0;
  config.policy = policy;
  config.remote_nodes = std::move(remotes);
  config.node_config = FastPlatformConfig();
  config.gossip_interval_us = 0;  // Tests drive GossipNow() by hand.
  return config;
}

const Cluster::PeerStats* FindPeer(const Cluster::ClusterStats& stats,
                                   const std::string& name) {
  for (const auto& peer : stats.peers) {
    if (peer.name == name) return &peer;
  }
  return nullptr;
}

// ------------------------------------------------------------ end-to-end

TEST(ClusterNetTest, RemoteInvokeEndToEnd) {
  AgentNode a(NodeAgentConfig{.node_name = "na"});
  AgentNode b(NodeAgentConfig{.node_name = "nb"});
  SKIP_WITHOUT_LOOPBACK(a);
  SKIP_WITHOUT_LOOPBACK(b);

  Cluster cluster(RemoteClusterConfig({{"na", a.port()}, {"nb", b.port()}},
                                      LoadBalancePolicy::kRoundRobin));
  EXPECT_EQ(cluster.num_nodes(), 0);
  EXPECT_EQ(cluster.total_nodes(), 2);

  for (int i = 0; i < 4; ++i) {
    const std::string payload = "remote-" + std::to_string(i);
    auto routed = cluster.Invoke("Id", EchoArgs(payload));
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    EXPECT_EQ(routed.sets()[0].items[0].data.ToString(), payload);
    EXPECT_EQ(routed.attempts, 1);
    EXPECT_TRUE(routed.node_name == "na" || routed.node_name == "nb") << routed.node_name;
  }
  const auto counts = cluster.InvocationsPerNode();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0] + counts[1], 4u);
  EXPECT_EQ(a.agent().invocations_served() + b.agent().invocations_served(), 4u);
}

TEST(ClusterNetTest, RemoteInvokeAddsZeroPayloadCopies) {
  constexpr size_t kPayloadBytes = 1 << 20;

  // Baseline: the same invocation served by one in-process local node. The
  // only payload copy on this path is the sandbox boundary itself (function
  // outputs marshal into the sandbox's memory context before the aliased
  // read-back).
  uint64_t local_copied = 0;
  uint64_t local_aliased = 0;
  {
    Cluster::Config config = RemoteClusterConfig({}, LoadBalancePolicy::kRoundRobin);
    config.num_nodes = 1;
    Cluster local(config);
    ASSERT_TRUE(local.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
    ASSERT_TRUE(local.RegisterCompositionDsl(kNodeDsl).ok());
    ASSERT_TRUE(local.Invoke("Id", EchoArgs("warmup")).ok());
    const auto before = dfunc::DataPlaneStats::Get().snapshot();
    auto routed = local.Invoke("Id", EchoArgs(std::string(kPayloadBytes, 'q')));
    const auto after = dfunc::DataPlaneStats::Get().snapshot();
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    local_copied = after.bytes_copied - before.bytes_copied;
    local_aliased = after.bytes_aliased - before.bytes_aliased;
  }

  AgentNode node(NodeAgentConfig{.node_name = "nz"});
  SKIP_WITHOUT_LOOPBACK(node);
  Cluster cluster(
      RemoteClusterConfig({{"nz", node.port()}}, LoadBalancePolicy::kRoundRobin));
  // Warm-up: connection establishment and first-invoke setup out of the
  // measured window.
  ASSERT_TRUE(cluster.Invoke("Id", EchoArgs("warmup")).ok());

  const auto before = dfunc::DataPlaneStats::Get().snapshot();
  auto routed = cluster.Invoke("Id", EchoArgs(std::string(kPayloadBytes, 'q')));
  const auto after = dfunc::DataPlaneStats::Get().snapshot();
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ASSERT_EQ(routed.sets()[0].items[0].data.size(), kPayloadBytes);

  // The wire is a seam of the PR 7 zero-copy plane, not an excuse to copy:
  // scatter-encode → writev on the way out, aliasing unmarshal over the
  // receive buffer on the way in, at both ends. Crossing the wire must add
  // ZERO payload copies over the local path — only aliases (request encode
  // + decode, outcome encode + decode move the payload by reference four
  // more times).
  EXPECT_EQ(after.bytes_copied - before.bytes_copied, local_copied);
  EXPECT_GE(after.bytes_aliased - before.bytes_aliased, local_aliased + 2 * kPayloadBytes);
}

TEST(ClusterNetTest, RemoteDeadlineSurfacesAsDeadlineExceeded) {
  AgentNode node(NodeAgentConfig{.node_name = "nd"});
  SKIP_WITHOUT_LOOPBACK(node);
  Cluster cluster(
      RemoteClusterConfig({{"nd", node.port()}}, LoadBalancePolicy::kRoundRobin));

  InvocationRequest request;
  request.composition = "Nap";  // Naps 500 ms; deadline is 50 ms.
  request.args = EchoArgs("late");
  request.deadline_us = InvocationRequest::DeadlineIn(50 * dbase::kMicrosPerMilli);
  auto routed = cluster.Invoke(std::move(request));
  ASSERT_FALSE(routed.ok());
  EXPECT_EQ(routed.status().code(), dbase::StatusCode::kDeadlineExceeded)
      << routed.status().ToString();
  // A deadline is the client's decision, not a node failure: no re-route.
  EXPECT_EQ(cluster.Stats().reroutes_peer_lost, 0u);
}

// --------------------------------------------------------------- shedding

TEST(ClusterNetTest, ShedPeerReroutesToSibling) {
  // Node A admits one interactive invocation at a time; node B is open.
  AgentNode a(NodeAgentConfig{.node_name = "na", .max_inflight_interactive = 1});
  AgentNode b(NodeAgentConfig{.node_name = "nb"});
  SKIP_WITHOUT_LOOPBACK(a);
  SKIP_WITHOUT_LOOPBACK(b);
  Cluster cluster(RemoteClusterConfig({{"na", a.port()}, {"nb", b.port()}},
                                      LoadBalancePolicy::kRoundRobin));

  // Occupy A (round-robin starts there) with a napping invocation.
  dbase::Latch nap_done(1);
  cluster.InvokeAsync("Nap", EchoArgs("occupy"),
                      [&](dbase::Result<DataSetList> result, int node) {
                        EXPECT_TRUE(result.ok()) << result.status().ToString();
                        EXPECT_EQ(node, 0);
                        nap_done.CountDown();
                      });
  const auto arrived = [&] {
    return a.platform().dispatcher_stats().invocations_started >= 1;
  };
  for (int i = 0; i < 500 && !arrived(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(arrived()) << "occupier never reached node A";

  // Round-robin sends this one to B directly.
  auto direct = cluster.Invoke("Id", EchoArgs("direct"));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(direct.node_name, "nb");

  // This one is aimed at A, which sheds at its cap — the router re-routes
  // it once to B instead of surfacing the 429-equivalent.
  auto rerouted = cluster.Invoke("Id", EchoArgs("rerouted"));
  ASSERT_TRUE(rerouted.ok()) << rerouted.status().ToString();
  EXPECT_EQ(rerouted.node_name, "nb");
  EXPECT_EQ(rerouted.attempts, 2);

  const auto stats = cluster.Stats();
  EXPECT_EQ(stats.reroutes_shed, 1u);
  const auto* peer_a = FindPeer(stats, "na");
  ASSERT_NE(peer_a, nullptr);
  EXPECT_GE(peer_a->sheds_received, 1u);
  EXPECT_GE(a.agent().invocations_shed(), 1u);

  ASSERT_TRUE(nap_done.WaitFor(5 * dbase::kMicrosPerSecond));
}

// -------------------------------------------------------------- peer loss

TEST(ClusterNetTest, PeerLossMidInvokeReroutesToSurvivor) {
  auto a = std::make_unique<AgentNode>(NodeAgentConfig{.node_name = "na"});
  AgentNode b(NodeAgentConfig{.node_name = "nb"});
  SKIP_WITHOUT_LOOPBACK(*a);
  SKIP_WITHOUT_LOOPBACK(b);
  Cluster cluster(RemoteClusterConfig({{"na", a->port()}, {"nb", b.port()}},
                                      LoadBalancePolicy::kRoundRobin));

  dbase::Latch done(1);
  std::atomic<int> served_by{-1};
  std::atomic<bool> ok{false};
  dbase::StatusCode code = dbase::StatusCode::kOk;
  cluster.InvokeAsync("Nap", EchoArgs("survivor"),
                      [&](dbase::Result<DataSetList> result, int node) {
                        ok.store(result.ok());
                        if (!result.ok()) code = result.status().code();
                        served_by.store(node);
                        done.CountDown();
                      });
  const auto arrived = [&] {
    return a->platform().dispatcher_stats().invocations_started >= 1;
  };
  for (int i = 0; i < 500 && !arrived(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(arrived()) << "invoke never reached node A";

  // Node A dies mid-invocation. The pending invoke fails kUnavailable
  // ("peer lost"), maps to the retry-safe FailureKind::kPeerLost, and the
  // router re-runs it on B — Dandelion functions are pure, so the re-run
  // is side-effect-safe.
  a.reset();

  ASSERT_TRUE(done.WaitFor(10 * dbase::kMicrosPerSecond));
  EXPECT_TRUE(ok.load()) << dbase::StatusCodeName(code);
  EXPECT_EQ(served_by.load(), 1);

  const auto stats = cluster.Stats();
  EXPECT_GE(stats.reroutes_peer_lost, 1u);
  const auto* peer_a = FindPeer(stats, "na");
  ASSERT_NE(peer_a, nullptr);
  EXPECT_EQ(peer_a->state, "suspect");
}

// ------------------------------------------------- multi-process peer kill

// A dandelion_node daemon spawned next to this test binary, handshaking
// its bound port over a stdout pipe.
struct SpawnedNode {
  pid_t pid = -1;
  uint16_t port = 0;

  bool ok() const { return pid > 0 && port != 0; }
  void Kill(int signal_number = SIGKILL) {
    if (pid <= 0) return;
    kill(pid, signal_number);
    int status = 0;
    waitpid(pid, &status, 0);
    pid = -1;
  }
};

std::string NodeBinaryPath() {
  char exe[4096] = {};
  const ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) return "";
  std::string dir(exe, static_cast<size_t>(n));
  return std::string(dirname(dir.data())) + "/dandelion_node";
}

SpawnedNode SpawnNode(const std::string& name) {
  SpawnedNode node;
  const std::string binary = NodeBinaryPath();
  if (binary.empty() || access(binary.c_str(), X_OK) != 0) return node;

  int fds[2];
  if (pipe(fds) != 0) return node;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return node;
  }
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    const std::string name_flag = "--name=" + name;
    const char* argv[] = {binary.c_str(), name_flag.c_str(), "--port=0",
                          "--workers=2", nullptr};
    execv(binary.c_str(), const_cast<char**>(argv));
    _exit(127);
  }
  close(fds[1]);
  node.pid = pid;

  // Read the "LISTENING <port>" handshake with a bounded wait.
  std::string line;
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < give_up) {
    pollfd pfd{fds[0], POLLIN, 0};
    if (poll(&pfd, 1, 200) <= 0) continue;
    char buffer[128];
    const ssize_t got = read(fds[0], buffer, sizeof(buffer));
    if (got <= 0) break;
    line.append(buffer, static_cast<size_t>(got));
    const size_t newline = line.find('\n');
    if (newline != std::string::npos) {
      unsigned port = 0;
      if (sscanf(line.c_str(), "LISTENING %u", &port) == 1) {
        node.port = static_cast<uint16_t>(port);
      }
      break;
    }
  }
  close(fds[0]);
  if (node.port == 0) node.Kill();
  return node;
}

TEST(ClusterNetTest, KilledNodeProcessIsAbsorbedByRetryPolicy) {
  SpawnedNode n0 = SpawnNode("proc0");
  if (!n0.ok()) {
    GTEST_SKIP() << "cannot spawn dandelion_node (no loopback or binary missing)";
  }
  SpawnedNode n1 = SpawnNode("proc1");
  SpawnedNode n2 = SpawnNode("proc2");
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(n2.ok());

  Cluster cluster(RemoteClusterConfig(
      {{"proc0", n0.port}, {"proc1", n1.port}, {"proc2", n2.port}},
      LoadBalancePolicy::kRoundRobin));

  // Sanity: every process answers before the kill.
  for (int i = 0; i < 3; ++i) {
    auto warm = cluster.Invoke("Id", EchoArgs("warm"));
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }

  // A 600 ms Work invocation lands on proc0 (round-robin wrapped back);
  // SIGKILL the process while it is burning.
  dbase::Latch done(1);
  std::atomic<bool> ok{false};
  std::string failure;
  std::mutex failure_mu;
  cluster.InvokeAsync("Work", EchoArgs("600000"),
                      [&](dbase::Result<DataSetList> result, int) {
                        ok.store(result.ok());
                        if (!result.ok()) {
                          std::lock_guard<std::mutex> lock(failure_mu);
                          failure = result.status().ToString();
                        }
                        done.CountDown();
                      });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  n0.Kill(SIGKILL);

  ASSERT_TRUE(done.WaitFor(20 * dbase::kMicrosPerSecond));
  {
    std::lock_guard<std::mutex> lock(failure_mu);
    // The killed peer is environmental (kPeerLost, retry-safe): the retry
    // policy absorbs it by re-routing — never a crash-kind 500.
    EXPECT_TRUE(ok.load()) << failure;
  }
  const auto stats = cluster.Stats();
  EXPECT_GE(stats.reroutes_peer_lost, 1u);
  EXPECT_GE(stats.remote_retry.retries_granted, 1u);

  n1.Kill(SIGTERM);
  n2.Kill(SIGTERM);
}

// ------------------------------------------------------------- mesh calls

TEST(ClusterNetTest, MeshCallRidesTheNodeWire) {
  AgentNode b(NodeAgentConfig{.node_name = "nb"});
  SKIP_WITHOUT_LOOPBACK(b);
  // The service physically lives on node B's mesh.
  b.platform().mesh().Register("svc.internal", std::make_shared<dhttp::EchoService>());

  Cluster::Config config =
      RemoteClusterConfig({{"nb", b.port()}}, LoadBalancePolicy::kRoundRobin);
  config.num_nodes = 1;  // One local node whose mesh calls ride the wire.
  Cluster cluster(config);
  cluster.node(0).mesh().RegisterRemote("svc.internal", "nb");

  dhttp::HttpRequest request;
  request.method = dhttp::Method::kPost;
  request.target = "http://svc.internal/echo";
  request.body = "carried over dnet";
  auto sanitized = dhttp::SanitizeRequest(request.Serialize());
  ASSERT_TRUE(sanitized.ok()) << sanitized.status().ToString();

  auto result = cluster.node(0).mesh().Call(*sanitized);
  EXPECT_EQ(result.response.status_code, 200);
  EXPECT_EQ(result.response.body, "carried over dnet");
  EXPECT_EQ(cluster.node(0).mesh().remote_calls(), 1u);
  // The serving node's mesh saw the call as a local one.
  EXPECT_EQ(b.platform().mesh().total_calls(), 1u);
}

// ------------------------------------------------------------- membership

TEST(ClusterNetTest, MembershipSuspectsEvictsAndReadmits) {
  auto c = std::make_unique<AgentNode>(NodeAgentConfig{.node_name = "nc"});
  SKIP_WITHOUT_LOOPBACK(*c);
  const uint16_t port = c->port();

  Cluster::Config config =
      RemoteClusterConfig({{"nc", port}}, LoadBalancePolicy::kRoundRobin);
  config.membership.suspect_after_us = 100 * dbase::kMicrosPerMilli;
  config.membership.evict_after_us = 250 * dbase::kMicrosPerMilli;
  Cluster cluster(config);

  cluster.GossipNow();
  {
    const auto stats = cluster.Stats();
    const auto* peer = FindPeer(stats, "nc");
    ASSERT_NE(peer, nullptr);
    EXPECT_EQ(peer->state, "active");
    EXPECT_GE(peer->gossip_age_us, 0);
    // Interactive + batch caps, 256 each by default.
    EXPECT_EQ(peer->remote_admission_cap, 512u);
  }

  // The node dies. Gossip starts failing; staleness crosses the suspect
  // threshold, then the eviction threshold.
  c.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  cluster.GossipNow();
  EXPECT_EQ(FindPeer(cluster.Stats(), "nc")->state, "suspect");

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  cluster.GossipNow();
  {
    const auto stats = cluster.Stats();
    EXPECT_EQ(FindPeer(stats, "nc")->state, "left");
    EXPECT_GE(stats.membership.suspects, 1u);
    EXPECT_GE(stats.membership.evictions, 1u);
  }
  // With no eligible node, invokes fail fast instead of hanging.
  auto unroutable = cluster.Invoke("Id", EchoArgs("nowhere"));
  EXPECT_FALSE(unroutable.ok());
  EXPECT_EQ(unroutable.status().code(), dbase::StatusCode::kUnavailable);

  // The node comes back on the same port: eviction kept probing it, so
  // one gossip round re-admits it without administrative intervention.
  c = std::make_unique<AgentNode>(NodeAgentConfig{.node_name = "nc", .port = port});
  ASSERT_FALSE(c->skipped()) << c->skip_reason();
  cluster.GossipNow();
  {
    const auto stats = cluster.Stats();
    EXPECT_EQ(FindPeer(stats, "nc")->state, "active");
    EXPECT_GE(stats.membership.rejoins, 1u);
  }
  auto routed = cluster.Invoke("Id", EchoArgs("welcome back"));
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed.node_name, "nc");
}

TEST(ClusterNetTest, GossipFillsPeerStatsAndLocalitysticks) {
  AgentNode a(NodeAgentConfig{.node_name = "na"});
  AgentNode b(NodeAgentConfig{.node_name = "nb"});
  SKIP_WITHOUT_LOOPBACK(a);
  SKIP_WITHOUT_LOOPBACK(b);
  Cluster cluster(RemoteClusterConfig({{"na", a.port()}, {"nb", b.port()}},
                                      LoadBalancePolicy::kLocality));

  // First placement falls back to least-loaded; afterwards the serve
  // history pins the composition to that node.
  auto first = cluster.Invoke("Id", EchoArgs("first"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int i = 0; i < 5; ++i) {
    auto routed = cluster.Invoke("Id", EchoArgs("again"));
    ASSERT_TRUE(routed.ok());
    EXPECT_EQ(routed.node_index, first.node_index);
  }

  cluster.GossipNow();
  const auto stats = cluster.Stats();
  EXPECT_GE(stats.gossip_rounds, 1u);
  const auto* served_peer = FindPeer(stats, first.node_name);
  ASSERT_NE(served_peer, nullptr);
  EXPECT_TRUE(served_peer->remote);
  EXPECT_EQ(served_peer->served, 6u);
  EXPECT_GE(served_peer->invokes_sent, 6u);
  EXPECT_GT(served_peer->bytes_sent, 0u);
  EXPECT_GT(served_peer->bytes_received, 0u);
  EXPECT_GE(served_peer->gossip_age_us, 0);
}

// -------------------------------------------------------- protocol hygiene

int BlockingConnect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval timeout{};
  timeout.tv_sec = 5;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendRaw(int fd, const std::string& bytes) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + offset, bytes.size() - offset);
    if (n <= 0) return;  // Peer already dropped us — that is the point.
    offset += static_cast<size_t>(n);
  }
}

// Reads until EOF (connection dropped by the server) or the RCVTIMEO.
// True when the server dropped the connection: a clean EOF, or a reset —
// aborting with our unsent bytes still in the socket buffer makes the
// kernel answer RST rather than FIN, and both mean "you were cut off".
bool ReadUntilEof(int fd) {
  char buffer[4096];
  while (true) {
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n == 0) return true;
    if (n < 0) return errno == ECONNRESET;
  }
}

std::string ValidInvokeFrame() {
  dnet::WireInvoke invoke;
  invoke.composition = "Id";
  invoke.invocation_id = 7;
  invoke.args.push_back(DataSet{"in", {DataItem{"", "fuzz seed payload"}}});
  std::string body;
  for (const auto& chunk : dnet::EncodeInvoke(invoke)) {
    body.append(chunk.view());
  }
  dnet::FrameHeader header;
  header.type = dnet::FrameType::kInvoke;
  header.body_len = static_cast<uint32_t>(body.size());
  header.request_id = 99;
  return dnet::EncodeFrameHeader(header) + body;
}

TEST(ClusterNetTest, HostileFramesDropTheConnectionNotTheServer) {
  AgentNode node(NodeAgentConfig{.node_name = "nh",
                                 .limits = dnet::FrameLimits{.max_body_bytes = 4096}});
  SKIP_WITHOUT_LOOPBACK(node);
  const dnet::NodeServer& server = node.agent().server();

  const std::string valid = ValidInvokeFrame();
  std::vector<std::pair<const char*, std::string>> hostile;
  hostile.emplace_back("http instead of dnet", std::string("GET / HTTP/1.1\r\n\r\n"));
  {
    std::string bad_magic = valid;
    bad_magic[0] ^= 0xFF;
    hostile.emplace_back("bad magic", bad_magic);
  }
  {
    std::string bad_version = valid;
    bad_version[4] = 9;
    hostile.emplace_back("unknown version", bad_version);
  }
  {
    std::string bad_type = valid;
    bad_type[5] = 0x5A;
    hostile.emplace_back("unknown frame type", bad_type);
  }
  {
    std::string bad_reserved = valid;
    bad_reserved[12] = 1;
    hostile.emplace_back("reserved word set", bad_reserved);
  }
  {
    dnet::FrameHeader oversized;
    oversized.type = dnet::FrameType::kInvoke;
    oversized.body_len = 5000;  // Beyond the 4096-byte limit.
    hostile.emplace_back("oversized body length", dnet::EncodeFrameHeader(oversized));
  }
  {
    dnet::FrameHeader header;
    header.type = dnet::FrameType::kInvoke;
    header.body_len = 8;
    hostile.emplace_back("corrupt invoke body",
                         dnet::EncodeFrameHeader(header) + std::string(8, '\xEE'));
  }

  uint64_t expected_errors = server.protocol_errors();
  for (const auto& [label, bytes] : hostile) {
    const int fd = BlockingConnect(node.port());
    SendRaw(fd, bytes);
    // The contract: kInvalidArgument internally, connection dropped, no
    // reply bytes owed. From out here that is a clean EOF.
    EXPECT_TRUE(ReadUntilEof(fd)) << label;
    close(fd);
    ++expected_errors;
    const auto counted = [&] { return server.protocol_errors() >= expected_errors; };
    for (int i = 0; i < 500 && !counted(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(counted()) << label << ": protocol_errors=" << server.protocol_errors()
                           << " want>=" << expected_errors;
  }

  // A half-sent header followed by a hangup is not a protocol error, just
  // an EOF — and must not wedge the accept loop.
  {
    const int fd = BlockingConnect(node.port());
    SendRaw(fd, valid.substr(0, 11));
    close(fd);
  }

  // Deterministic fuzz: bounded random mutations of a valid invoke frame.
  // Whatever the bytes decode to, the server must survive.
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 150; ++i) {
    std::string mutated = valid;
    const int flips = 1 + static_cast<int>(next() % 3);
    for (int f = 0; f < flips; ++f) {
      mutated[next() % mutated.size()] ^= static_cast<char>(next() & 0xFF);
    }
    const int fd = BlockingConnect(node.port());
    SendRaw(fd, mutated);
    close(fd);
  }

  // Liveness: the server still speaks the protocol to a well-behaved
  // router after all of the above.
  Cluster cluster(
      RemoteClusterConfig({{"nh", node.port()}}, LoadBalancePolicy::kRoundRobin));
  auto routed = cluster.Invoke("Id", EchoArgs("still alive"));
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed.sets()[0].items[0].data.ToString(), "still alive");
}

// ------------------------------------------------------------------ statz

void HttpSendAll(int fd, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n = write(fd, data.data() + offset, data.size() - offset);
    ASSERT_GT(n, 0);
    offset += static_cast<size_t>(n);
  }
}

dbase::Result<dhttp::HttpResponse> ReadOneHttpResponse(int fd) {
  std::string carry;
  char buffer[8192];
  while (true) {
    auto head = dhttp::ScanMessageHead(carry, 1 << 20);
    if (!head.ok()) return head.status();
    if (head->has_value()) {
      const size_t total = (*head)->head_bytes + static_cast<size_t>((*head)->content_length);
      if (carry.size() >= total) {
        return dhttp::ParseResponse(std::string_view(carry).substr(0, total));
      }
    }
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n <= 0) return dbase::Unavailable("connection closed mid-response");
    carry.append(buffer, static_cast<size_t>(n));
  }
}

TEST(ClusterNetTest, StatzReportsClusterSection) {
  AgentNode remote(NodeAgentConfig{.node_name = "nb"});
  SKIP_WITHOUT_LOOPBACK(remote);
  Cluster cluster(
      RemoteClusterConfig({{"nb", remote.port()}}, LoadBalancePolicy::kRoundRobin));

  // The frontend's own platform holds the composition catalog; the
  // attached cluster carries the invocations to the remote node.
  Platform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kNodeDsl).ok());
  HttpFrontend frontend(&platform, FrontendConfig{});
  frontend.AttachCluster(&cluster);
  auto started = frontend.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }

  // One invocation through the whole path: HTTP ingest → cluster routing
  // → dnet wire → remote engine → wire → HTTP response.
  {
    dhttp::HttpRequest request;
    request.method = dhttp::Method::kPost;
    request.target = "/invoke/Id";
    request.headers.Add("X-Dandelion-Raw", "1");
    request.body = "via the whole stack";
    const int fd = BlockingConnect(frontend.port());
    HttpSendAll(fd, request.Serialize());
    auto response = ReadOneHttpResponse(fd);
    close(fd);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status_code, 200);
    auto sets = dfunc::UnmarshalSets(response->body);
    ASSERT_TRUE(sets.ok());
    EXPECT_EQ((*sets)[0].items[0].data.ToString(), "via the whole stack");
    EXPECT_EQ(remote.agent().invocations_served(), 1u);
  }

  cluster.GossipNow();
  {
    const int fd = BlockingConnect(frontend.port());
    HttpSendAll(fd, "GET /statz HTTP/1.1\r\n\r\n");
    auto response = ReadOneHttpResponse(fd);
    close(fd);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status_code, 200);
    const std::string& body = response->body;
    EXPECT_NE(body.find("\"cluster\":{\"enabled\":true"), std::string::npos) << body;
    EXPECT_NE(body.find("\"reroutes_shed\":"), std::string::npos);
    EXPECT_NE(body.find("\"gossip_rounds\":"), std::string::npos);
    EXPECT_NE(body.find("\"nb\":{\"remote\":true"), std::string::npos) << body;
    EXPECT_NE(body.find("\"bytes_sent\":"), std::string::npos);
  }
  frontend.Stop();
}

}  // namespace
}  // namespace dandelion
