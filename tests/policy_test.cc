// Tests for the elasticity policy layer (src/policy/): pure, fake-clock
// unit tests for each shipped policy — PI anti-windup, hysteresis deadband /
// cooldown / interactive weighting, KPA windows / panic / scale-to-zero —
// plus ControlPlane::StepOnce reading signals coherently while role shifts
// race it on the real WorkerSet.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/base/clock.h"
#include "src/base/thread.h"
#include "src/policy/elasticity.h"
#include "src/policy/kpa.h"
#include "src/policy/membership.h"
#include "src/policy/retry.h"
#include "src/runtime/controller.h"
#include "src/runtime/engine.h"

namespace {

using dbase::kMicrosPerMilli;
using dbase::kMicrosPerSecond;
using dbase::Micros;
using dpolicy::ElasticityDecision;
using dpolicy::ElasticitySignals;

// --------------------------------------------------------------------- PI

TEST(PiControllerTest, ProportionalAndIntegralTerms) {
  dpolicy::PiController::Gains gains;
  gains.kp = 1.0;
  gains.ki = 0.5;
  gains.integral_limit = 100.0;
  dpolicy::PiController pi(gains);
  EXPECT_DOUBLE_EQ(pi.Update(2.0), 2.0 + 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(pi.Update(2.0), 2.0 + 0.5 * 4.0);
  pi.Reset();
  EXPECT_DOUBLE_EQ(pi.integral(), 0.0);
}

TEST(PiControllerTest, AntiWindupClamps) {
  dpolicy::PiController::Gains gains;
  gains.kp = 0.0;
  gains.ki = 1.0;
  gains.integral_limit = 10.0;
  dpolicy::PiController pi(gains);
  for (int i = 0; i < 100; ++i) {
    pi.Update(5.0);
  }
  EXPECT_DOUBLE_EQ(pi.integral(), 10.0);
  EXPECT_DOUBLE_EQ(pi.Update(0.0), 10.0);
}

ElasticitySignals BaseSignals(Micros now, int compute = 3, int comm = 1) {
  ElasticitySignals signals;
  signals.now_us = now;
  signals.compute_workers = compute;
  signals.comm_workers = comm;
  return signals;
}

TEST(PaperPiPolicyTest, ShiftsOneCoreTowardGrowingQueue) {
  dpolicy::PaperPiPolicy::Options options;
  options.gains.kp = 1.0;
  options.gains.ki = 0.0;
  dpolicy::PaperPiPolicy policy(options);

  ElasticitySignals signals = BaseSignals(0);
  signals.compute_growth = 10.0;
  ElasticityDecision decision = policy.Decide(signals);
  EXPECT_EQ(decision.shift_toward_compute, 1);  // Never more than one.

  policy.Reset();
  signals.compute_growth = 0.0;
  signals.comm_growth = 10.0;
  decision = policy.Decide(signals);
  EXPECT_EQ(decision.shift_toward_compute, -1);
}

TEST(PaperPiPolicyTest, WithinThresholdHolds) {
  dpolicy::PaperPiPolicy policy;  // Paper gains; threshold 0.5.
  ElasticitySignals signals = BaseSignals(0);
  signals.compute_growth = 0.2;
  signals.comm_growth = 0.1;
  EXPECT_EQ(policy.Decide(signals).shift_toward_compute, 0);
}

TEST(PaperPiPolicyTest, IntegralAccumulatesSmallErrors) {
  dpolicy::PaperPiPolicy policy;  // kp=0.5 ki=0.125.
  ElasticitySignals signals = BaseSignals(0);
  signals.compute_growth = 0.6;  // Signal 0.375 on the first tick: hold.
  EXPECT_EQ(policy.Decide(signals).shift_toward_compute, 0);
  // Persistent small error integrates past the threshold.
  int shifted = 0;
  for (int i = 0; i < 10 && shifted == 0; ++i) {
    shifted = policy.Decide(signals).shift_toward_compute;
  }
  EXPECT_EQ(shifted, 1);
}

// -------------------------------------------------------------- Hysteresis

dpolicy::HysteresisPolicy::Options TestHysteresisOptions() {
  dpolicy::HysteresisPolicy::Options options;
  options.deadband = 2.0;
  options.max_shift = 4;
  options.cooldown_us = 60 * kMicrosPerMilli;
  options.interactive_weight = 4.0;
  options.backlog_weight = 1.0;
  return options;
}

TEST(HysteresisPolicyTest, MovesMultipleCoresOnLargeImbalance) {
  dpolicy::HysteresisPolicy policy(TestHysteresisOptions());
  ElasticitySignals signals = BaseSignals(0, /*compute=*/8, /*comm=*/8);
  signals.comm_backlog = 400;  // Per-comm-worker pressure 50 vs 0.
  const ElasticityDecision decision = policy.Decide(signals);
  EXPECT_EQ(decision.shift_toward_compute, -4);  // Clamped to max_shift.
}

TEST(HysteresisPolicyTest, DeadbandHoldsOnNoise) {
  dpolicy::HysteresisPolicy policy(TestHysteresisOptions());
  ElasticitySignals signals = BaseSignals(0, 4, 4);
  signals.compute_backlog = 5;
  signals.comm_backlog = 4;  // Imbalance 0.25 < deadband 2.
  EXPECT_EQ(policy.Decide(signals).shift_toward_compute, 0);
  EXPECT_STREQ(policy.Decide(signals).reason, "within deadband");
}

TEST(HysteresisPolicyTest, CooldownBlocksBackToBackShifts) {
  dpolicy::HysteresisPolicy policy(TestHysteresisOptions());
  ElasticitySignals signals = BaseSignals(0, 8, 8);
  signals.comm_backlog = 400;

  EXPECT_EQ(policy.Decide(signals).shift_toward_compute, -4);
  // 30 ms later (cooldown is 60 ms): blocked even though pressure persists.
  signals.now_us = 30 * kMicrosPerMilli;
  ElasticityDecision decision = policy.Decide(signals);
  EXPECT_EQ(decision.shift_toward_compute, 0);
  EXPECT_STREQ(decision.reason, "cooldown");
  // Past the cooldown: shifts again.
  signals.now_us = 61 * kMicrosPerMilli;
  EXPECT_EQ(policy.Decide(signals).shift_toward_compute, -4);
}

TEST(HysteresisPolicyTest, InteractiveBacklogOutweighsBatchFlood) {
  // A large batch backlog on the comm side vs a small interactive backlog
  // on the compute side: the interactive weighting must still favor the
  // shift interactive work needs (toward compute).
  dpolicy::HysteresisPolicy::Options options = TestHysteresisOptions();
  options.interactive_weight = 8.0;
  dpolicy::HysteresisPolicy policy(options);

  ElasticitySignals signals = BaseSignals(0, 4, 4);
  signals.comm_backlog = 20;  // All batch.
  signals.compute_backlog = 12;
  signals.interactive_compute_backlog = 12;  // All interactive (×8 = 96).
  const ElasticityDecision decision = policy.Decide(signals);
  EXPECT_GT(decision.shift_toward_compute, 0);
}

// ------------------------------------------------------------------- KPA

TEST(KpaAutoscalerTest, ScalesUpWithConcurrency) {
  dpolicy::KpaConfig config;
  config.target_concurrency = 1.0;
  dpolicy::KpaAutoscaler autoscaler(config);
  const Micros tick = 2 * kMicrosPerSecond;
  int replicas = 0;
  for (int i = 1; i <= 30; ++i) {
    replicas = autoscaler.Tick(i * tick, 4.0);
  }
  EXPECT_EQ(replicas, 4);
}

TEST(KpaAutoscalerTest, ScaleToZeroAfterGrace) {
  dpolicy::KpaConfig config;
  config.scale_to_zero_grace_us = 10 * kMicrosPerSecond;
  config.stable_window_us = 20 * kMicrosPerSecond;
  dpolicy::KpaAutoscaler autoscaler(config);
  const Micros tick = 2 * kMicrosPerSecond;
  Micros now = 0;
  for (int i = 0; i < 10; ++i) {
    now += tick;
    autoscaler.Tick(now, 2.0);
  }
  EXPECT_GE(autoscaler.current_replicas(), 1);
  // Traffic stops; replicas must survive the grace period, then go to zero.
  bool saw_nonzero_during_grace = false;
  for (int i = 0; i < 30; ++i) {
    now += tick;
    const int replicas = autoscaler.Tick(now, 0.0);
    if (i < 3 && replicas > 0) {
      saw_nonzero_during_grace = true;
    }
  }
  EXPECT_TRUE(saw_nonzero_during_grace);
  EXPECT_EQ(autoscaler.current_replicas(), 0);
}

TEST(KpaAutoscalerTest, PanicModeNeverScalesDown) {
  dpolicy::KpaConfig config;
  config.target_concurrency = 1.0;
  dpolicy::KpaAutoscaler autoscaler(config);
  const Micros tick = 2 * kMicrosPerSecond;
  Micros now = 0;
  // Establish a small steady state.
  for (int i = 0; i < 10; ++i) {
    now += tick;
    autoscaler.Tick(now, 1.0);
  }
  const int before = autoscaler.current_replicas();
  // Sudden burst → panic; replicas must jump and not dip while panicking.
  now += tick;
  int replicas = autoscaler.Tick(now, 12.0);
  EXPECT_GT(replicas, before);
  EXPECT_TRUE(autoscaler.in_panic_mode());
  const int burst_replicas = replicas;
  now += tick;
  replicas = autoscaler.Tick(now, 1.0);  // Burst gone, panic window active.
  EXPECT_GE(replicas, burst_replicas);
}

TEST(KpaAutoscalerTest, RespectsMaxReplicas) {
  dpolicy::KpaConfig config;
  config.max_replicas = 5;
  dpolicy::KpaAutoscaler autoscaler(config);
  EXPECT_LE(autoscaler.Tick(kMicrosPerSecond, 100.0), 5);
}

// ------------------------------------------------------ ConcurrencyTarget

dpolicy::ConcurrencyTargetPolicy::Options FastKpaOptions() {
  dpolicy::ConcurrencyTargetPolicy::Options options;
  options.kpa.stable_window_us = 120 * kMicrosPerMilli;
  options.kpa.panic_window_us = 30 * kMicrosPerMilli;
  options.kpa.max_replicas = 1024;
  options.per_core_target = 2.0;
  return options;
}

TEST(ConcurrencyTargetPolicyTest, TracksCommConcurrencyTowardTarget) {
  dpolicy::ConcurrencyTargetPolicy policy(FastKpaOptions());
  // 8 cores, 1 comm; sustained comm concurrency of 8 against a per-core
  // target of 2 wants 4 comm cores.
  Micros now = 0;
  ElasticityDecision decision;
  for (int i = 0; i < 12; ++i) {
    now += 30 * kMicrosPerMilli;
    ElasticitySignals signals = BaseSignals(now, 7, 1);
    signals.comm_inflight = 6.0;
    signals.comm_backlog = 2;
    decision = policy.Decide(signals);
  }
  EXPECT_EQ(decision.shift_toward_compute, 1 - 4);  // 1 comm core → 4.
}

TEST(ConcurrencyTargetPolicyTest, PanicWindowReactsToBurst) {
  dpolicy::ConcurrencyTargetPolicy policy(FastKpaOptions());
  Micros now = 0;
  // Quiet steady state at 1 comm core.
  for (int i = 0; i < 8; ++i) {
    now += 30 * kMicrosPerMilli;
    ElasticitySignals signals = BaseSignals(now, 7, 1);
    signals.comm_inflight = 1.0;
    policy.Decide(signals);
  }
  // Burst: short-window desire far exceeds the current allocation. The
  // panic window must trigger and the policy must ask for more comm cores
  // immediately, despite the stable window still averaging the quiet past.
  now += 30 * kMicrosPerMilli;
  ElasticitySignals burst = BaseSignals(now, 7, 1);
  burst.comm_inflight = 16.0;
  burst.comm_backlog = 24;
  const ElasticityDecision decision = policy.Decide(burst);
  EXPECT_LT(decision.shift_toward_compute, 0);
  EXPECT_TRUE(decision.panic);

  // Load vanishes while the panic window is open: no scale-down decision.
  now += 30 * kMicrosPerMilli;
  ElasticitySignals calm = BaseSignals(now, 7 + decision.shift_toward_compute,
                                       1 - decision.shift_toward_compute);
  calm.comm_inflight = 0.0;
  const ElasticityDecision hold = policy.Decide(calm);
  EXPECT_GE(hold.shift_toward_compute, 0 - 0);  // Never below current...
  EXPECT_LE(hold.shift_toward_compute, 0);      // ...and no shed while panicking.
}

TEST(ConcurrencyTargetPolicyTest, ClampsToMinCommWorkers) {
  dpolicy::ConcurrencyTargetPolicy policy(FastKpaOptions());
  Micros now = 0;
  ElasticityDecision decision;
  for (int i = 0; i < 12; ++i) {
    now += 30 * kMicrosPerMilli;
    ElasticitySignals signals = BaseSignals(now, 4, 4);
    signals.comm_inflight = 0.0;  // No comm work at all.
    decision = policy.Decide(signals);
  }
  // Desired would be 0; the policy floors at min_comm_workers == 1.
  EXPECT_EQ(decision.shift_toward_compute, 3);
}

// ----------------------------------------------------------------- Factory

TEST(PolicyFactoryTest, NamesRoundTrip) {
  for (auto kind : {dpolicy::PolicyKind::kPaperPi, dpolicy::PolicyKind::kHysteresis,
                    dpolicy::PolicyKind::kConcurrencyTarget}) {
    auto policy = dpolicy::CreatePolicy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), dpolicy::PolicyKindName(kind));
    auto parsed = dpolicy::PolicyKindFromName(policy->name());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(dpolicy::PolicyKindFromName("nope").ok());
}

// ------------------------------------------------------------ ControlPlane

// StepOnce must read a coherent snapshot while role shifts race it: the
// recorded split always sums to the pool size, growth deltas never go wild
// (pushed/popped counters are shift-invariant), and the post-decision split
// respects the one-worker-per-role floor.
TEST(ControlPlaneTest, StepOnceCoherentAcrossConcurrentRoleShifts) {
  dhttp::ServiceMesh mesh;
  dandelion::WorkerSet::Config config;
  config.num_workers = 6;
  config.initial_comm_workers = 3;
  dandelion::WorkerSet workers(config, &mesh);
  workers.set_sleep_for_modeled_latency(false);

  // A policy that always asks for a big shift, alternating direction, so
  // the control plane itself is constantly re-labeling workers too.
  class ThrashPolicy : public dpolicy::ElasticityPolicy {
   public:
    const char* name() const override { return "thrash"; }
    dpolicy::ElasticityDecision Decide(const dpolicy::ElasticitySignals& signals) override {
      EXPECT_EQ(signals.compute_workers + signals.comm_workers, 6);
      dpolicy::ElasticityDecision decision;
      decision.shift_toward_compute = (++calls_ % 2 == 0) ? 2 : -2;
      return decision;
    }

   private:
    int calls_ = 0;
  };

  dandelion::ControlPlane control(&workers, std::make_unique<ThrashPolicy>(),
                                  dandelion::ControlPlane::Config{});

  std::atomic<bool> stop{false};
  dbase::JoiningThread shifter("shifter", [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      workers.ShiftWorkers(+1);
      workers.ShiftWorkers(-1);
    }
  });

  for (int i = 0; i < 500; ++i) {
    const auto decision = control.StepOnce();
    ASSERT_EQ(decision.signals.compute_workers + decision.signals.comm_workers, 6);
    ASSERT_EQ(decision.compute_workers + decision.comm_workers, 6);
    ASSERT_GE(decision.compute_workers, 1);
    ASSERT_GE(decision.comm_workers, 1);
    // Nothing was submitted: growth must be exactly zero no matter how the
    // counters were sampled relative to the racing shifts.
    ASSERT_DOUBLE_EQ(decision.signals.compute_growth, 0.0);
    ASSERT_DOUBLE_EQ(decision.signals.comm_growth, 0.0);
  }
  stop.store(true);
  shifter.Join();
}

TEST(WorkerSetTest, ShiftWorkersMovesMultipleAndClamps) {
  dhttp::ServiceMesh mesh;
  dandelion::WorkerSet::Config config;
  config.num_workers = 6;
  config.initial_comm_workers = 3;
  dandelion::WorkerSet workers(config, &mesh);

  EXPECT_EQ(workers.ShiftWorkers(2), 2);  // 3 comm → 1.
  EXPECT_EQ(workers.comm_workers(), 1);
  EXPECT_EQ(workers.ShiftWorkers(5), 0);  // Floor of one comm worker.
  EXPECT_EQ(workers.ShiftWorkers(-10), -4);  // 5 compute → 1.
  EXPECT_EQ(workers.compute_workers(), 1);
  EXPECT_EQ(workers.ShiftWorkers(0), 0);
}

// ------------------------------------------------------------ RetryPolicy

dpolicy::RetryOptions TestRetryOptions() {
  dpolicy::RetryOptions options;
  options.max_retries_interactive = 1;
  options.max_retries_batch = 3;
  options.backoff_base_us = 1000;
  options.backoff_multiplier = 2.0;
  options.backoff_cap_us = 100 * 1000;
  options.breaker_trip_after = 5;
  options.breaker_cooldown_us = 1 * kMicrosPerSecond;
  return options;
}

TEST(RetryPolicyTest, BudgetsDifferByPriorityClass) {
  dpolicy::RetryPolicy policy(TestRetryOptions());
  // Interactive: one relaunch, then the budget is spent.
  auto decision = policy.OnFailure("f", dpolicy::FailureKind::kCrash,
                                   /*interactive=*/true, /*attempts_so_far=*/0, 0);
  EXPECT_TRUE(decision.retry);
  decision = policy.OnFailure("f", dpolicy::FailureKind::kCrash, true, 1, 0);
  EXPECT_FALSE(decision.retry);
  EXPECT_STREQ(decision.reason, "budget exhausted");
  // Batch work can afford three.
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_TRUE(policy.OnFailure("g", dpolicy::FailureKind::kCrash, false, attempt, 0).retry);
  }
  EXPECT_FALSE(policy.OnFailure("g", dpolicy::FailureKind::kCrash, false, 3, 0).retry);
  const auto stats = policy.Stats();
  EXPECT_EQ(stats.retries_granted, 4u);
  EXPECT_EQ(stats.retries_denied_budget, 2u);
}

TEST(RetryPolicyTest, BackoffIsExponentialAndCapped) {
  dpolicy::RetryPolicy policy(TestRetryOptions());
  EXPECT_EQ(policy.BackoffForAttempt(0), 1000);
  EXPECT_EQ(policy.BackoffForAttempt(1), 2000);
  EXPECT_EQ(policy.BackoffForAttempt(2), 4000);
  EXPECT_EQ(policy.BackoffForAttempt(10), 100 * 1000);  // Cap.
}

TEST(RetryPolicyTest, OnlyRetrySafeKindsAreRelaunched) {
  dpolicy::RetryPolicy policy(TestRetryOptions());
  // Infrastructure failures are retry-safe…
  EXPECT_TRUE(policy.OnFailure("f", dpolicy::FailureKind::kCrash, false, 0, 0).retry);
  EXPECT_TRUE(policy.OnFailure("f", dpolicy::FailureKind::kPoolChildLost, false, 0, 0).retry);
  EXPECT_TRUE(
      policy.OnFailure("f", dpolicy::FailureKind::kResourceExhausted, false, 0, 0).retry);
  // …deterministic function behaviour and client intent are not: a jail
  // kill or nonzero exit reproduces on relaunch, deadline/cancel kills were
  // asked for.
  EXPECT_FALSE(policy.OnFailure("f", dpolicy::FailureKind::kJailKill, false, 0, 0).retry);
  EXPECT_FALSE(policy.OnFailure("f", dpolicy::FailureKind::kNonzeroExit, false, 0, 0).retry);
  EXPECT_FALSE(policy.OnFailure("f", dpolicy::FailureKind::kDeadlineKill, false, 0, 0).retry);
  EXPECT_FALSE(policy.OnFailure("f", dpolicy::FailureKind::kCancelKill, false, 0, 0).retry);
  EXPECT_EQ(policy.Stats().retries_denied_kind, 4u);
}

TEST(RetryPolicyTest, DeadlineAndCancelKillsDoNotFeedTheBreaker) {
  dpolicy::RetryPolicy policy(TestRetryOptions());
  for (int i = 0; i < 20; ++i) {
    policy.OnFailure("f", dpolicy::FailureKind::kDeadlineKill, true, 0, 0);
    policy.OnFailure("f", dpolicy::FailureKind::kCancelKill, true, 0, 0);
  }
  EXPECT_TRUE(policy.Admit("f", 0).allow);
  EXPECT_EQ(policy.Stats().breaker_trips, 0u);
  EXPECT_TRUE(policy.Breakers().empty());
}

TEST(RetryPolicyTest, BreakerLifecycleOnFakeClock) {
  dpolicy::RetryPolicy policy(TestRetryOptions());
  Micros now = 0;
  // Five consecutive crashes trip the breaker (kind is breaker-relevant
  // even though a jail kill is never retried).
  for (int i = 0; i < 5; ++i) {
    policy.OnFailure("f", dpolicy::FailureKind::kJailKill, true, 0, now);
  }
  auto stats = policy.Stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breakers_open, 1);

  // Open: fast-fail until the cooldown elapses.
  auto admit = policy.Admit("f", now + 10);
  EXPECT_FALSE(admit.allow);
  EXPECT_STREQ(admit.reason, "breaker open");

  // Cooldown elapsed: exactly one probe is admitted, concurrents fast-fail.
  now += 1 * kMicrosPerSecond;
  admit = policy.Admit("f", now);
  EXPECT_TRUE(admit.allow);
  EXPECT_STREQ(admit.reason, "half-open probe");
  EXPECT_FALSE(policy.Admit("f", now).allow);

  // Probe failure re-opens and restarts the cooldown.
  policy.OnFailure("f", dpolicy::FailureKind::kCrash, true, 0, now);
  EXPECT_FALSE(policy.Admit("f", now + 1).allow);
  EXPECT_EQ(policy.Stats().breaker_trips, 2u);

  // Second probe succeeds: the breaker closes and the recovery is counted.
  now += 1 * kMicrosPerSecond;
  EXPECT_TRUE(policy.Admit("f", now).allow);
  policy.OnSuccess("f");
  stats = policy.Stats();
  EXPECT_EQ(stats.breaker_recoveries, 1u);
  EXPECT_EQ(stats.breakers_open, 0);
  EXPECT_TRUE(policy.Admit("f", now).allow);

  const auto breakers = policy.Breakers();
  ASSERT_EQ(breakers.size(), 1u);
  EXPECT_EQ(breakers[0].function, "f");
  EXPECT_EQ(breakers[0].state, dpolicy::BreakerState::kClosed);
  EXPECT_EQ(breakers[0].consecutive_failures, 0);
}

TEST(RetryPolicyTest, OpenBreakerSuppressesRetriesForItsFunction) {
  dpolicy::RetryOptions options = TestRetryOptions();
  options.breaker_trip_after = 2;
  dpolicy::RetryPolicy policy(options);
  EXPECT_TRUE(policy.OnFailure("f", dpolicy::FailureKind::kCrash, false, 0, 0).retry);
  // Second consecutive failure trips the breaker; granting a relaunch at
  // the same moment would race the fast-fail gate.
  const auto decision = policy.OnFailure("f", dpolicy::FailureKind::kCrash, false, 1, 0);
  EXPECT_FALSE(decision.retry);
  EXPECT_STREQ(decision.reason, "breaker open");
}

TEST(RetryPolicyTest, DisabledPolicyIsInert) {
  dpolicy::RetryOptions options = TestRetryOptions();
  options.enabled = false;
  dpolicy::RetryPolicy policy(options);
  EXPECT_TRUE(policy.Admit("f", 0).allow);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(policy.OnFailure("f", dpolicy::FailureKind::kCrash, true, 0, 0).retry);
  }
  EXPECT_TRUE(policy.Admit("f", 0).allow);
  EXPECT_EQ(policy.Stats().retries_granted, 0u);
  EXPECT_EQ(policy.Stats().breaker_trips, 0u);
}

// ------------------------------------------------------------- membership

using dpolicy::MemberSignals;
using dpolicy::MembershipDecision;
using dpolicy::MembershipOptions;
using dpolicy::MembershipPolicy;
using dpolicy::MemberState;

MembershipOptions FastMembership() {
  MembershipOptions options;
  options.suspect_after_us = 100;
  options.evict_after_us = 300;
  options.scale_hold_us = 1000;
  return options;
}

TEST(MembershipPolicyTest, JoinStartsActiveWithGraceWindow) {
  MembershipPolicy policy(FastMembership());
  // A just-added peer has never gossiped (last_heard_us = 0): it ages from
  // first sight, so it stays active through the suspect window.
  auto decision = policy.Tick(1000, {{"n0", 0, 0.0}});
  ASSERT_EQ(decision.transitions.size(), 1u);
  EXPECT_STREQ(decision.transitions[0].reason, "joined");
  EXPECT_EQ(policy.StateOf("n0"), MemberState::kActive);

  decision = policy.Tick(1000 + 99, {{"n0", 0, 0.0}});
  EXPECT_TRUE(decision.transitions.empty());
  EXPECT_EQ(policy.StateOf("n0"), MemberState::kActive);

  // Grace exhausted without a first gossip: suspect like anyone else.
  decision = policy.Tick(1000 + 100, {{"n0", 0, 0.0}});
  ASSERT_EQ(decision.transitions.size(), 1u);
  EXPECT_STREQ(decision.transitions[0].reason, "stale");
  EXPECT_EQ(policy.StateOf("n0"), MemberState::kSuspect);
}

TEST(MembershipPolicyTest, StaleMemberSuspectsThenEvicts) {
  MembershipPolicy policy(FastMembership());
  policy.Tick(1000, {{"n0", 1000, 0.5}});
  EXPECT_EQ(policy.StateOf("n0"), MemberState::kActive);

  auto decision = policy.Tick(1150, {{"n0", 1000, 0.5}});
  ASSERT_EQ(decision.transitions.size(), 1u);
  EXPECT_EQ(decision.transitions[0].to, MemberState::kSuspect);
  EXPECT_STREQ(decision.transitions[0].reason, "stale");

  decision = policy.Tick(1400, {{"n0", 1000, 0.5}});
  ASSERT_EQ(decision.transitions.size(), 1u);
  EXPECT_EQ(decision.transitions[0].to, MemberState::kLeft);
  EXPECT_STREQ(decision.transitions[0].reason, "evicted");
  EXPECT_EQ(policy.StateOf("n0"), MemberState::kLeft);
  EXPECT_EQ(policy.stats().suspects, 1u);
  EXPECT_EQ(policy.stats().evictions, 1u);
}

TEST(MembershipPolicyTest, RecoveryAndRejoinAreDistinct) {
  MembershipPolicy policy(FastMembership());
  policy.Tick(1000, {{"n0", 1000, 0.5}});
  policy.Tick(1150, {{"n0", 1000, 0.5}});  // → suspect.

  // Fresh gossip while suspect recovers.
  auto decision = policy.Tick(1200, {{"n0", 1190, 0.5}});
  ASSERT_EQ(decision.transitions.size(), 1u);
  EXPECT_STREQ(decision.transitions[0].reason, "recovered");
  EXPECT_EQ(policy.stats().recoveries, 1u);

  // Stale all the way to eviction, then fresh gossip rejoins.
  policy.Tick(2000, {{"n0", 1190, 0.5}});
  ASSERT_EQ(policy.StateOf("n0"), MemberState::kLeft);
  decision = policy.Tick(2100, {{"n0", 2090, 0.5}});
  ASSERT_EQ(decision.transitions.size(), 1u);
  EXPECT_STREQ(decision.transitions[0].reason, "rejoined");
  EXPECT_EQ(policy.stats().rejoins, 1u);
  EXPECT_EQ(policy.StateOf("n0"), MemberState::kActive);
}

TEST(MembershipPolicyTest, OmittedMemberIsForgotten) {
  MembershipPolicy policy(FastMembership());
  policy.Tick(1000, {{"n0", 1000, 0.5}, {"n1", 1000, 0.5}});
  EXPECT_EQ(policy.StateOf("n1"), MemberState::kActive);
  // Administrative removal: n1 vanishes from the roster, not via staleness.
  policy.Tick(1010, {{"n0", 1010, 0.5}});
  EXPECT_EQ(policy.StateOf("n1"), MemberState::kLeft);  // Unknown = unroutable.
  EXPECT_EQ(policy.stats().evictions, 0u);
}

TEST(MembershipPolicyTest, ScaleOutHintIsRateLimited) {
  MembershipPolicy policy(FastMembership());
  auto decision = policy.Tick(1000, {{"n0", 1000, 0.9}, {"n1", 1000, 0.8}});
  EXPECT_EQ(decision.desired_nodes_delta, 1);
  EXPECT_STREQ(decision.reason, "saturated");

  // Still saturated but inside the hold window: no second hint.
  decision = policy.Tick(1500, {{"n0", 1500, 0.9}, {"n1", 1500, 0.8}});
  EXPECT_EQ(decision.desired_nodes_delta, 0);
  EXPECT_STREQ(decision.reason, "hold");

  decision = policy.Tick(2200, {{"n0", 2200, 0.9}, {"n1", 2200, 0.8}});
  EXPECT_EQ(decision.desired_nodes_delta, 1);
  EXPECT_EQ(policy.stats().scale_out_hints, 2u);
}

TEST(MembershipPolicyTest, ScaleInDrainsLeastUtilizedAboveMinActive) {
  MembershipOptions options = FastMembership();
  options.min_active = 2;
  MembershipPolicy policy(options);
  auto decision =
      policy.Tick(1000, {{"n0", 1000, 0.10}, {"n1", 1000, 0.02}, {"n2", 1000, 0.15}});
  EXPECT_EQ(decision.desired_nodes_delta, -1);
  EXPECT_EQ(decision.drain_candidate, "n1");
  EXPECT_STREQ(decision.reason, "idle");

  // At the floor: idle fleets still never drain below min_active.
  MembershipPolicy floor(options);
  decision = floor.Tick(1000, {{"n0", 1000, 0.10}, {"n1", 1000, 0.02}});
  EXPECT_EQ(decision.desired_nodes_delta, 0);
  EXPECT_STREQ(decision.reason, "steady");
}

TEST(MembershipPolicyTest, SuspectsDoNotCountTowardFleetUtilization) {
  MembershipPolicy policy(FastMembership());
  policy.Tick(1000, {{"n0", 1000, 0.9}, {"n1", 1000, 0.0}});
  // n1 goes stale; only active n0's 0.9 remains → saturated.
  auto decision = policy.Tick(1200, {{"n0", 1190, 0.9}, {"n1", 1000, 0.0}});
  EXPECT_EQ(policy.StateOf("n1"), MemberState::kSuspect);
  EXPECT_EQ(decision.desired_nodes_delta, 1);
  EXPECT_STREQ(decision.reason, "saturated");
}

TEST(RetryPolicyTest, FailureKindNamesAreStable) {
  // statz and the bench JSON key sections by these names.
  EXPECT_EQ(dpolicy::FailureKindName(dpolicy::FailureKind::kNone), "none");
  EXPECT_EQ(dpolicy::FailureKindName(dpolicy::FailureKind::kCrash), "crash");
  EXPECT_EQ(dpolicy::FailureKindName(dpolicy::FailureKind::kJailKill), "jail_kill");
  EXPECT_EQ(dpolicy::FailureKindName(dpolicy::FailureKind::kDeadlineKill), "deadline_kill");
  EXPECT_EQ(dpolicy::FailureKindName(dpolicy::FailureKind::kCancelKill), "cancel_kill");
  EXPECT_EQ(dpolicy::FailureKindName(dpolicy::FailureKind::kNonzeroExit), "nonzero_exit");
  EXPECT_EQ(dpolicy::FailureKindName(dpolicy::FailureKind::kPoolChildLost), "pool_child_lost");
  EXPECT_EQ(dpolicy::FailureKindName(dpolicy::FailureKind::kResourceExhausted),
            "resource_exhausted");
}

}  // namespace
