// Tests for src/http: message model, parser (including malformed inputs),
// URI handling, the §6.3 sanitizer, the service mesh, and every simulated
// cloud service.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/http/http_message.h"
#include "src/http/http_parser.h"
#include "src/http/sanitizer.h"
#include "src/http/service_mesh.h"
#include "src/http/services.h"
#include "src/http/uri.h"

namespace dhttp {
namespace {

// ---------------------------------------------------------------- Messages

TEST(HeaderListTest, GetIsCaseInsensitive) {
  HeaderList headers;
  headers.Add("Content-Type", "text/plain");
  EXPECT_EQ(headers.Get("content-type").value(), "text/plain");
  EXPECT_EQ(headers.Get("CONTENT-TYPE").value(), "text/plain");
  EXPECT_FALSE(headers.Get("Accept").has_value());
}

TEST(HeaderListTest, SetReplacesAllOccurrences) {
  HeaderList headers;
  headers.Add("X-Tag", "a");
  headers.Add("x-tag", "b");
  headers.Set("X-Tag", "c");
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers.Get("X-Tag").value(), "c");
}

TEST(HttpMessageTest, RequestSerializeAddsContentLength) {
  HttpRequest req;
  req.method = Method::kPost;
  req.target = "http://svc.internal/path";
  req.body = "hello";
  const std::string wire = req.Serialize();
  EXPECT_NE(wire.find("POST http://svc.internal/path HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(HttpMessageTest, MethodNames) {
  EXPECT_EQ(MethodName(Method::kGet), "GET");
  EXPECT_EQ(MethodFromName("DELETE").value(), Method::kDelete);
  EXPECT_FALSE(MethodFromName("PATCH").has_value());
  EXPECT_FALSE(MethodFromName("get").has_value());  // Case-sensitive per RFC.
}

TEST(HttpMessageTest, ResponseFactories) {
  EXPECT_EQ(HttpResponse::Ok("x").status_code, 200);
  EXPECT_EQ(HttpResponse::NotFound().status_code, 404);
  EXPECT_EQ(HttpResponse::BadRequest().status_code, 400);
  EXPECT_EQ(HttpResponse::Unauthorized().status_code, 401);
  EXPECT_EQ(HttpResponse::ServerError().status_code, 500);
  EXPECT_TRUE(HttpResponse::Ok("x").IsSuccess());
  EXPECT_FALSE(HttpResponse::NotFound().IsSuccess());
}

// ------------------------------------------------------------------ Parser

TEST(ParserTest, RequestRoundTrip) {
  HttpRequest req;
  req.method = Method::kPut;
  req.target = "http://store.internal/bucket/key?v=1";
  req.headers.Add("X-Meta", "yes");
  req.body = "payload bytes";
  auto parsed = ParseRequest(req.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->method, Method::kPut);
  EXPECT_EQ(parsed->target, req.target);
  EXPECT_EQ(parsed->headers.Get("X-Meta").value(), "yes");
  EXPECT_EQ(parsed->body, "payload bytes");
}

TEST(ParserTest, ResponseRoundTrip) {
  HttpResponse resp = HttpResponse::Make(207, "Multi Status", "body here");
  resp.headers.Add("Server", "dandelion");
  auto parsed = ParseResponse(resp.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status_code, 207);
  EXPECT_EQ(parsed->reason, "Multi Status");
  EXPECT_EQ(parsed->body, "body here");
}

TEST(ParserTest, EmptyBodyAllowed) {
  auto parsed = ParseRequest("GET http://h.x/ HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->body.empty());
}

struct BadRequestCase {
  const char* name;
  const char* wire;
};

class ParserRejectionTest : public ::testing::TestWithParam<BadRequestCase> {};

TEST_P(ParserRejectionTest, Rejects) {
  auto parsed = ParseRequest(GetParam().wire);
  EXPECT_FALSE(parsed.ok()) << "should reject: " << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserRejectionTest,
    ::testing::Values(
        BadRequestCase{"no_crlf", "GET http://h.x/ HTTP/1.1"},
        BadRequestCase{"no_blank_line", "GET http://h.x/ HTTP/1.1\r\nA: b\r\n"},
        BadRequestCase{"bad_method", "PATCH http://h.x/ HTTP/1.1\r\n\r\n"},
        BadRequestCase{"lowercase_method", "get http://h.x/ HTTP/1.1\r\n\r\n"},
        BadRequestCase{"missing_target", "GET  HTTP/1.1\r\n\r\n"},
        BadRequestCase{"bad_version", "GET http://h.x/ HTTP/2.0\r\n\r\n"},
        BadRequestCase{"four_tokens", "GET http://h.x/ HTTP/1.1 extra\r\n\r\n"},
        BadRequestCase{"header_no_colon", "GET http://h.x/ HTTP/1.1\r\nbadheader\r\n\r\n"},
        BadRequestCase{"header_bad_name", "GET http://h.x/ HTTP/1.1\r\nbad header: x\r\n\r\n"},
        BadRequestCase{"content_length_lies_short",
                       "GET http://h.x/ HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"},
        BadRequestCase{"content_length_lies_long",
                       "GET http://h.x/ HTTP/1.1\r\nContent-Length: 1\r\n\r\nabc"},
        BadRequestCase{"content_length_not_number",
                       "GET http://h.x/ HTTP/1.1\r\nContent-Length: ten\r\n\r\n"}),
    [](const ::testing::TestParamInfo<BadRequestCase>& param_info) { return param_info.param.name; });

TEST(ParserTest, ConflictingDuplicateContentLengthRejected) {
  EXPECT_FALSE(
      ParseRequest("POST http://h.x/ HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabc")
          .ok());
  // Identical repeats are tolerated (RFC 9112 §6.3).
  EXPECT_TRUE(
      ParseRequest("POST http://h.x/ HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc")
          .ok());
}

TEST(ScanMessageHeadTest, IncompleteHeadWantsMoreBytes) {
  auto head = ScanMessageHead("POST /x HTTP/1.1\r\nContent-Len", 64 * 1024);
  ASSERT_TRUE(head.ok());
  EXPECT_FALSE(head->has_value());
}

TEST(ScanMessageHeadTest, CompleteHeadReportsFraming) {
  const std::string wire = "POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\npartial-bod";
  auto head = ScanMessageHead(wire, 64 * 1024);
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(head->has_value());
  EXPECT_EQ((*head)->head_bytes, wire.size() - 11);
  EXPECT_EQ((*head)->content_length, 11u);
  // Works on partially-received bodies: framing is known before the body.
  auto early = ScanMessageHead(wire.substr(0, wire.size() - 5), 64 * 1024);
  ASSERT_TRUE(early.ok());
  ASSERT_TRUE(early->has_value());
  EXPECT_EQ((*early)->content_length, 11u);
}

TEST(ScanMessageHeadTest, MissingContentLengthMeansZero) {
  auto head = ScanMessageHead("GET /healthz HTTP/1.1\r\n\r\n", 64 * 1024);
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(head->has_value());
  EXPECT_EQ((*head)->content_length, 0u);
}

TEST(ScanMessageHeadTest, OversizedHeadRejected) {
  // Terminated but over the cap.
  std::string big = "GET / HTTP/1.1\r\n";
  big.append(200, 'a');
  big += ": b\r\n\r\n";
  auto head = ScanMessageHead(big, 64);
  ASSERT_FALSE(head.ok());
  EXPECT_EQ(head.status().code(), dbase::StatusCode::kResourceExhausted);
  // Unterminated and already past the cap: fails without waiting for more.
  auto unterminated = ScanMessageHead(std::string(65, 'a'), 64);
  ASSERT_FALSE(unterminated.ok());
  EXPECT_EQ(unterminated.status().code(), dbase::StatusCode::kResourceExhausted);
  // Under the cap and unterminated: still incomplete, not an error.
  auto pending = ScanMessageHead(std::string(40, 'a'), 64);
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->has_value());
}

TEST(ScanMessageHeadTest, TransferEncodingRejected) {
  // Chunked framing is unimplemented; defaulting it to zero-body would
  // leave the chunk bytes to be parsed as the next pipelined request
  // (request smuggling), so both the scanner and the full parser refuse.
  const char* wire =
      "POST /invoke/Id HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n";
  auto head = ScanMessageHead(wire, 64 * 1024);
  ASSERT_FALSE(head.ok());
  EXPECT_EQ(head.status().code(), dbase::StatusCode::kInvalidArgument);
  EXPECT_FALSE(ParseRequest("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").ok());
}

TEST(ScanMessageHeadTest, BadContentLengthFailsClosed) {
  auto garbage = ScanMessageHead("POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 64 * 1024);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), dbase::StatusCode::kInvalidArgument);
  auto conflicting = ScanMessageHead(
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n", 64 * 1024);
  ASSERT_FALSE(conflicting.ok());
  EXPECT_EQ(conflicting.status().code(), dbase::StatusCode::kInvalidArgument);
  auto identical = ScanMessageHead(
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n", 64 * 1024);
  ASSERT_TRUE(identical.ok());
  ASSERT_TRUE(identical->has_value());
  EXPECT_EQ((*identical)->content_length, 5u);
}

TEST(ParserTest, ResponseRejectsBadStatusLine) {
  EXPECT_FALSE(ParseResponse("HTTP/1.1 999x OK\r\n\r\n").ok());
  EXPECT_FALSE(ParseResponse("HTTP/1.1 99 Low\r\n\r\n").ok());
  EXPECT_FALSE(ParseResponse("SPDY/1.1 200 OK\r\n\r\n").ok());
  EXPECT_FALSE(ParseResponse("HTTP/1.1 200\r\n\r\n").ok());  // No reason sep.
}

TEST(ParserTest, BinaryBodySurvives) {
  HttpRequest req;
  req.method = Method::kPost;
  req.target = "http://h.x/";
  std::string body;
  for (int i = 0; i < 256; ++i) {
    body.push_back(static_cast<char>(i));
  }
  req.body = body;
  auto parsed = ParseRequest(req.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->body, body);
}

// --------------------------------------------------------------------- URI

TEST(UriTest, FullForm) {
  auto uri = ParseUri("http://store.internal:8080/bucket/key?version=2");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->scheme, "http");
  EXPECT_EQ(uri->host, "store.internal");
  EXPECT_EQ(uri->port, 8080);
  EXPECT_EQ(uri->path, "/bucket/key");
  EXPECT_EQ(uri->query, "version=2");
}

TEST(UriTest, Defaults) {
  auto uri = ParseUri("http://h.x");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->port, 80);
  EXPECT_EQ(uri->path, "/");
  EXPECT_EQ(uri->query, "");
  auto https = ParseUri("https://h.x/");
  ASSERT_TRUE(https.ok());
  EXPECT_EQ(https->port, 443);
}

TEST(UriTest, HostNormalizedToLower) {
  auto uri = ParseUri("http://Store.INTERNAL/a");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->host, "store.internal");
}

TEST(UriTest, Ipv4Host) {
  auto uri = ParseUri("http://192.168.1.10:9000/x");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->host, "192.168.1.10");
}

TEST(UriTest, Rejections) {
  EXPECT_FALSE(ParseUri("store.internal/x").ok());        // No scheme.
  EXPECT_FALSE(ParseUri("ftp://h.x/").ok());              // Bad scheme.
  EXPECT_FALSE(ParseUri("http:///x").ok());               // Empty host.
  EXPECT_FALSE(ParseUri("http://h.x:0/").ok());           // Port 0.
  EXPECT_FALSE(ParseUri("http://h.x:70000/").ok());       // Port too big.
  EXPECT_FALSE(ParseUri("http://h.x:12ab/").ok());        // Port not number.
  EXPECT_FALSE(ParseUri("http://-bad-.host/").ok());      // Label dashes.
  EXPECT_FALSE(ParseUri("http://ho st/").ok());           // Space in host.
}

TEST(UriTest, HostValidation) {
  EXPECT_TRUE(IsValidHost("a.b-c.d9"));
  EXPECT_TRUE(IsValidHost("10.0.0.1"));
  EXPECT_FALSE(IsValidHost("999.0.0.1.2"));
  EXPECT_FALSE(IsValidHost(""));
  EXPECT_FALSE(IsValidHost("under_score.com"));
  EXPECT_TRUE(IsValidHost("localhost"));
}

// --------------------------------------------------------------- Sanitizer

TEST(SanitizerTest, AcceptsCleanRequest) {
  HttpRequest req;
  req.method = Method::kGet;
  req.target = "http://svc.internal/data";
  auto sanitized = SanitizeRequest(req.Serialize());
  ASSERT_TRUE(sanitized.ok());
  EXPECT_EQ(sanitized->uri.host, "svc.internal");
}

TEST(SanitizerTest, RejectsRelativeTarget) {
  EXPECT_FALSE(SanitizeRequest("GET /data HTTP/1.1\r\n\r\n").ok());
}

TEST(SanitizerTest, RejectsGarbage) {
  EXPECT_FALSE(SanitizeRequest("not http at all").ok());
  EXPECT_FALSE(SanitizeRequest("").ok());
}

TEST(SanitizerTest, RejectsControlCharInHeaderValue) {
  // Build the smuggling attempt manually: the value embeds a CR.
  std::string wire = "GET http://h.x/ HTTP/1.1\r\nX-Bad: a";
  wire += '\x01';
  wire += "b\r\n\r\n";
  // \x01 is not CR/LF/NUL so the header check passes it; but targets with
  // control characters must fail:
  std::string wire2 = "GET http://h.x/\x01path HTTP/1.1\r\n\r\n";
  EXPECT_FALSE(SanitizeRequest(wire2).ok());
}

// ------------------------------------------------------------------- Mesh

SanitizedRequest MustSanitize(const HttpRequest& req) {
  auto s = SanitizeRequest(req.Serialize());
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(s).value();
}

TEST(ServiceMeshTest, RoutesByHost) {
  ServiceMesh mesh;
  mesh.Register("echo.internal", std::make_shared<EchoService>());
  HttpRequest req;
  req.method = Method::kPost;
  req.target = "http://echo.internal/";
  req.body = "ping";
  auto result = mesh.Call(MustSanitize(req));
  EXPECT_EQ(result.response.status_code, 200);
  EXPECT_EQ(result.response.body, "ping");
  EXPECT_GT(result.latency_us, 0);
  EXPECT_EQ(mesh.total_calls(), 1u);
}

TEST(ServiceMeshTest, UnknownHostIs502) {
  ServiceMesh mesh;
  HttpRequest req;
  req.target = "http://nowhere.internal/";
  auto result = mesh.Call(MustSanitize(req));
  EXPECT_EQ(result.response.status_code, 502);
}

TEST(ServiceMeshTest, LatencyModelScalesWithBytes) {
  dbase::Rng rng(1);
  LatencyModel model;
  model.base_us = 100;
  model.per_kb_us = 10.0;
  model.jitter_sigma = 0.0;
  EXPECT_EQ(model.Sample(0, rng), 100);
  EXPECT_EQ(model.Sample(1024 * 100, rng), 1100);
}

TEST(ServiceMeshTest, HasHost) {
  ServiceMesh mesh;
  EXPECT_FALSE(mesh.HasHost("x.y"));
  mesh.Register("x.y", std::make_shared<EchoService>());
  EXPECT_TRUE(mesh.HasHost("x.y"));
}

// ---------------------------------------------------------------- Services

HttpRequest MakeReq(Method m, const std::string& target, std::string body = "") {
  HttpRequest req;
  req.method = m;
  req.target = target;
  req.body = std::move(body);
  return req;
}

Uri MustUri(const std::string& s) {
  auto uri = ParseUri(s);
  EXPECT_TRUE(uri.ok());
  return std::move(uri).value();
}

TEST(ObjectStoreTest, PutGetDelete) {
  ObjectStoreService store;
  const std::string url = "http://s3.internal/bucket/key";
  auto put = store.Handle(MakeReq(Method::kPut, url, "data!"), MustUri(url));
  EXPECT_EQ(put.status_code, 201);
  auto get = store.Handle(MakeReq(Method::kGet, url), MustUri(url));
  EXPECT_EQ(get.status_code, 200);
  EXPECT_EQ(get.body, "data!");
  auto del = store.Handle(MakeReq(Method::kDelete, url), MustUri(url));
  EXPECT_EQ(del.status_code, 204);
  EXPECT_EQ(store.Handle(MakeReq(Method::kGet, url), MustUri(url)).status_code, 404);
  EXPECT_EQ(store.Handle(MakeReq(Method::kDelete, url), MustUri(url)).status_code, 404);
}

TEST(ObjectStoreTest, DirectAccessHelpers) {
  ObjectStoreService store;
  store.PutObject("/a/b", "xyz");
  EXPECT_TRUE(store.HasObject("/a/b"));
  EXPECT_EQ(store.ObjectSize("/a/b"), 3u);
  EXPECT_EQ(store.object_count(), 1u);
  EXPECT_FALSE(store.HasObject("/a/c"));
}

TEST(AuthServiceTest, TokenFlow) {
  AuthService auth("secret-token", {"http://l0.x/logs", "http://l1.x/logs"});
  const std::string url = "http://auth.internal/authorize";
  auto ok = auth.Handle(MakeReq(Method::kPost, url, "secret-token"), MustUri(url));
  EXPECT_EQ(ok.status_code, 200);
  EXPECT_EQ(ok.body, "http://l0.x/logs\nhttp://l1.x/logs\n");
  EXPECT_EQ(auth.Handle(MakeReq(Method::kPost, url, "wrong"), MustUri(url)).status_code, 401);
  EXPECT_EQ(auth.Handle(MakeReq(Method::kGet, url), MustUri(url)).status_code, 400);
  const std::string bad_path = "http://auth.internal/other";
  EXPECT_EQ(auth.Handle(MakeReq(Method::kPost, bad_path, "secret-token"), MustUri(bad_path))
                .status_code,
            400);
}

TEST(LogShardTest, ServesGeneratedLines) {
  auto lines = LogShardService::GenerateLines("shard0", 10, 42);
  ASSERT_EQ(lines.size(), 10u);
  EXPECT_NE(lines[0].find("shard0"), std::string::npos);
  // Deterministic for a seed.
  EXPECT_EQ(lines, LogShardService::GenerateLines("shard0", 10, 42));

  LogShardService shard(lines);
  const std::string url = "http://l0.x/logs";
  auto resp = shard.Handle(MakeReq(Method::kGet, url), MustUri(url));
  EXPECT_EQ(resp.status_code, 200);
  EXPECT_EQ(resp.body.find(lines[0]), 0u);
}

TEST(LlmServiceTest, CannedCompletionByPattern) {
  LlmService llm("fallback");
  llm.AddCannedCompletion("weather", "It is sunny.");
  const std::string url = "http://llm.x/v1/completions";
  auto hit = llm.Handle(MakeReq(Method::kPost, url, "what is the weather like?"), MustUri(url));
  EXPECT_EQ(hit.body, "It is sunny.");
  auto miss = llm.Handle(MakeReq(Method::kPost, url, "unrelated"), MustUri(url));
  EXPECT_EQ(miss.body, "fallback");
  EXPECT_EQ(llm.Handle(MakeReq(Method::kGet, url), MustUri(url)).status_code, 400);
}

TEST(KeyValueDbTest, SelectProjectFilterLimit) {
  KeyValueDbService db;
  db.CreateTable("cities", {"name", "country", "pop"});
  db.InsertRow("cities", {"Tokyo", "JP", "37"});
  db.InsertRow("cities", {"Osaka", "JP", "19"});
  db.InsertRow("cities", {"Zurich", "CH", "1"});

  EXPECT_EQ(db.ExecuteQuery("SELECT name FROM cities").value(), "Tokyo\nOsaka\nZurich\n");
  EXPECT_EQ(db.ExecuteQuery("SELECT name, pop FROM cities WHERE country = 'JP'").value(),
            "Tokyo,37\nOsaka,19\n");
  EXPECT_EQ(db.ExecuteQuery("SELECT name FROM cities LIMIT 1").value(), "Tokyo\n");
  EXPECT_EQ(db.ExecuteQuery("SELECT name FROM cities WHERE country = 'JP' LIMIT 1;").value(),
            "Tokyo\n");
  EXPECT_EQ(db.ExecuteQuery("SELECT * FROM cities LIMIT 1").value(), "Tokyo,JP,37\n");
}

TEST(KeyValueDbTest, QueryErrors) {
  KeyValueDbService db;
  db.CreateTable("t", {"a"});
  EXPECT_FALSE(db.ExecuteQuery("DROP TABLE t").ok());
  EXPECT_FALSE(db.ExecuteQuery("SELECT a FROM missing").ok());
  EXPECT_FALSE(db.ExecuteQuery("SELECT b FROM t").ok());
  EXPECT_FALSE(db.ExecuteQuery("SELECT a FROM t WHERE b = 'x'").ok());
  EXPECT_FALSE(db.ExecuteQuery("SELECT a FROM t LIMIT -3").ok());
}

TEST(KeyValueDbTest, HandleOverHttp) {
  KeyValueDbService db;
  db.CreateTable("t", {"a"});
  db.InsertRow("t", {"1"});
  const std::string url = "http://db.x/query";
  auto resp = db.Handle(MakeReq(Method::kPost, url, "SELECT a FROM t"), MustUri(url));
  EXPECT_EQ(resp.status_code, 200);
  EXPECT_EQ(resp.body, "1\n");
  auto bad = db.Handle(MakeReq(Method::kPost, url, "bogus"), MustUri(url));
  EXPECT_EQ(bad.status_code, 400);
}

TEST(LambdaServiceTest, Wraps) {
  LambdaService svc([](const HttpRequest&, const Uri& uri) {
    return HttpResponse::Ok("path=" + uri.path);
  });
  const std::string url = "http://x.y/abc";
  EXPECT_EQ(svc.Handle(MakeReq(Method::kGet, url), MustUri(url)).body, "path=/abc");
}

}  // namespace
}  // namespace dhttp
