// Unit tests for src/base: status/result, clocks, RNG, stats, queues,
// threads, strings.
#include <gtest/gtest.h>

// GCC 12 emits bogus -Wmaybe-uninitialized reports from std::variant
// internals under -O2 -DNDEBUG (gcc bug 105593); Result<T> wraps a variant,
// and the Result tests below trip them.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/base/log.h"
#include "src/base/queue.h"
#include "src/base/rng.h"
#include "src/base/sharded_queue.h"
#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/string_util.h"
#include "src/base/thread.h"

namespace dbase {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFound("x"), NotFound("x"));
  EXPECT_FALSE(NotFound("x") == NotFound("y"));
  EXPECT_FALSE(NotFound("x") == Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kAborted); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  ASSIGN_OR_RETURN(int half, HalveEven(x));
  ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterViaMacro(8).value(), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());
  EXPECT_FALSE(QuarterViaMacro(3).ok());
}

// ------------------------------------------------------------------- Clock

TEST(ClockTest, MonotonicAdvances) {
  MonotonicClock* clock = MonotonicClock::Get();
  const Micros a = clock->NowMicros();
  SpinFor(200);
  const Micros b = clock->NowMicros();
  EXPECT_GE(b - a, 200);
}

TEST(ClockTest, ManualClock) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.Set(10);
  EXPECT_EQ(clock.NowMicros(), 10);
}

TEST(ClockTest, StopwatchMeasures) {
  Stopwatch watch;
  SpinFor(300);
  EXPECT_GE(watch.ElapsedMicros(), 300);
}

TEST(ClockTest, Conversions) {
  EXPECT_EQ(MillisToMicros(1.5), 1500);
  EXPECT_DOUBLE_EQ(MicrosToMillis(2500), 2.5);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(1500000), 1.5);
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.BoundedPareto(1.2, 1.0, 100.0);
    EXPECT_GE(v, 1.0 - 1e-9);
    EXPECT_LE(v, 100.0 + 1e-9);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(17);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

// ------------------------------------------------------------------- Stats

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.0, 1e-9);
  EXPECT_NEAR(stats.stddev(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStatsTest, RelativeVariance) {
  OnlineStats stats;
  stats.Add(10.0);
  stats.Add(10.0);
  EXPECT_DOUBLE_EQ(stats.relative_variance_percent(), 0.0);
  stats.Add(40.0);
  EXPECT_GT(stats.relative_variance_percent(), 0.0);
}

TEST(LatencyRecorderTest, Percentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Record(i);
  }
  EXPECT_DOUBLE_EQ(rec.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(100), 100.0);
  EXPECT_NEAR(rec.Median(), 50.5, 0.01);
  EXPECT_NEAR(rec.Percentile(99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(rec.Mean(), 50.5);
}

TEST(LatencyRecorderTest, EmptyReturnsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Percentile(50), 0.0);
  EXPECT_EQ(rec.Mean(), 0.0);
  EXPECT_TRUE(rec.empty());
}

TEST(LatencyRecorderTest, RecordAfterQueryResorts) {
  LatencyRecorder rec;
  rec.Record(10);
  EXPECT_DOUBLE_EQ(rec.Median(), 10.0);
  rec.Record(20);
  rec.Record(0);
  EXPECT_DOUBLE_EQ(rec.Median(), 10.0);
  EXPECT_DOUBLE_EQ(rec.Max(), 20.0);
}

TEST(LatencyRecorderTest, Merge) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.Record(1);
  b.Record(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(TimeSeriesTest, TimeWeightedAverage) {
  TimeSeries series;
  series.Add(0, 10.0);
  series.Add(100, 20.0);
  // 10 for [0,100), 20 for [100,200) → average 15.
  EXPECT_DOUBLE_EQ(series.TimeWeightedAverage(200), 15.0);
  EXPECT_DOUBLE_EQ(series.MaxValue(), 20.0);
}

TEST(TimeSeriesTest, ResampleStep) {
  TimeSeries series;
  series.Add(0, 1.0);
  series.Add(250, 2.0);
  auto points = series.ResampleStep(100);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.0);
  EXPECT_DOUBLE_EQ(points[1].value, 1.0);
  EXPECT_DOUBLE_EQ(points[2].value, 1.0);
}

TEST(LogHistogramTest, PercentileBounds) {
  LogHistogram hist;
  for (uint64_t i = 1; i <= 1000; ++i) {
    hist.Add(i);
  }
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_LE(hist.ApproxPercentile(50), 1023u);
  EXPECT_GE(hist.ApproxPercentile(99), 511u);
}

// ------------------------------------------------------------------- Queue

TEST(MpmcQueueTest, FifoOrder) {
  MpmcQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(MpmcQueueTest, TryPopEmpty) {
  MpmcQueue<int> queue;
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(MpmcQueueTest, PopWithTimeoutTimesOut) {
  MpmcQueue<int> queue;
  const Stopwatch watch;
  EXPECT_FALSE(queue.PopWithTimeout(2000).has_value());
  EXPECT_GE(watch.ElapsedMicros(), 1500);
}

TEST(MpmcQueueTest, CloseDrainsThenEnds) {
  MpmcQueue<int> queue;
  queue.Push(1);
  queue.Close();
  EXPECT_FALSE(queue.Push(2));
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(MpmcQueueTest, Counters) {
  MpmcQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  (void)queue.Pop();
  EXPECT_EQ(queue.total_pushed(), 2u);
  EXPECT_EQ(queue.total_popped(), 1u);
  EXPECT_EQ(queue.Size(), 1u);
}

TEST(MpmcQueueTest, ConcurrentProducersConsumers) {
  MpmcQueue<int> queue;
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = queue.Pop()) {
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<size_t>(p)].join();
  }
  queue.Close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<size_t>(kProducers + c)].join();
  }
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ----------------------------------------------------------- Sharded queue

TEST(ShardedTaskQueueTest, LocalFifoOrderPerShard) {
  ShardedTaskQueue<int> queue(2);
  EXPECT_EQ(queue.shard_count(), 2u);
  queue.PushToShard(0, 1);
  queue.PushToShard(0, 2);
  queue.PushToShard(1, 3);
  EXPECT_EQ(queue.TryPopLocal(0).value(), 1);
  EXPECT_EQ(queue.TryPopLocal(0).value(), 2);
  EXPECT_FALSE(queue.TryPopLocal(0).has_value());
  EXPECT_EQ(queue.TryPopLocal(1).value(), 3);
}

TEST(ShardedTaskQueueTest, RoundRobinPushSpreadsShards) {
  ShardedTaskQueue<int> queue(4);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  for (size_t s = 0; s < queue.shard_count(); ++s) {
    EXPECT_EQ(queue.ShardSize(s), 2u);
  }
  EXPECT_EQ(queue.Size(), 8u);
}

TEST(ShardedTaskQueueTest, StealTakesOldestFromSibling) {
  ShardedTaskQueue<int> queue(3);
  queue.PushToShard(2, 7);
  queue.PushToShard(2, 8);
  EXPECT_FALSE(queue.TryPopLocal(0).has_value());
  EXPECT_EQ(queue.TrySteal(0).value(), 7);
  EXPECT_EQ(queue.total_stolen(), 1u);
  EXPECT_EQ(queue.total_popped(), 1u);  // A steal counts as a pop.
  EXPECT_EQ(queue.TryPop(0).value(), 8);
}

TEST(ShardedTaskQueueTest, PushBatchLandsOnOneShard) {
  ShardedTaskQueue<int> queue(4);
  EXPECT_TRUE(queue.PushBatch({1, 2, 3, 4, 5}, 2));
  EXPECT_EQ(queue.ShardSize(2), 5u);
  EXPECT_EQ(queue.total_pushed(), 5u);  // Every batched item is one push.
  EXPECT_EQ(queue.TryPopLocal(2).value(), 1);
}

TEST(ShardedTaskQueueTest, PopWithTimeoutStealsBeforeSleeping) {
  ShardedTaskQueue<int> queue(2);
  queue.PushToShard(1, 42);
  const Stopwatch watch;
  EXPECT_EQ(queue.PopWithTimeout(0, 100000).value(), 42);
  EXPECT_LT(watch.ElapsedMicros(), 50000);
  EXPECT_EQ(queue.total_stolen(), 1u);
}

TEST(ShardedTaskQueueTest, SiblingBatchWakesBlockedWaiter) {
  // A worker parked in PopWithTimeout on its empty shard is woken by a
  // batch landing on a sibling shard and steals from it, well before its
  // timeout elapses. The wake is best-effort (the lock-free notify can race
  // the waiter's sleep and lose, bounded by the timeout), so require a fast
  // wake in any of a few attempts rather than flaking on one lost race.
  constexpr Micros kTimeout = 2 * kMicrosPerSecond;
  bool woke_fast = false;
  for (int attempt = 0; attempt < 3 && !woke_fast; ++attempt) {
    ShardedTaskQueue<int> queue(2);
    std::optional<int> got;
    Stopwatch watch;
    std::thread waiter([&] { got = queue.PopWithTimeout(0, kTimeout); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(queue.PushBatch({7, 8}, 1));
    waiter.join();
    woke_fast = watch.ElapsedMicros() < kTimeout / 2;
    if (got.has_value()) {
      EXPECT_EQ(*got, 7);  // A steal takes the sibling's oldest item.
    }
  }
  EXPECT_TRUE(woke_fast);
}

TEST(ShardedTaskQueueTest, ApproxShardSizeTracksOperations) {
  ShardedTaskQueue<int> queue(3);
  EXPECT_EQ(queue.ApproxShardSize(0), 0u);
  queue.PushToShard(0, 1);
  queue.PushBatch({2, 3}, 0);
  EXPECT_EQ(queue.ApproxShardSize(0), 3u);
  (void)queue.TryPopLocal(0);
  EXPECT_EQ(queue.ApproxShardSize(0), 2u);
  (void)queue.TrySteal(1);  // Steals from shard 0.
  EXPECT_EQ(queue.ApproxShardSize(0), 1u);
  queue.RehomeShard(0, {2});
  EXPECT_EQ(queue.ApproxShardSize(0), 0u);
  EXPECT_EQ(queue.ApproxShardSize(2), 1u);
  EXPECT_EQ(queue.Size(), 1u);  // No residue left in flight after rehome.
}

TEST(ShardedTaskQueueTest, CloseDrainsThenEnds) {
  ShardedTaskQueue<int> queue(2);
  queue.PushToShard(0, 1);
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(2));
  EXPECT_FALSE(queue.PushBatch({3, 4}, 0));
  EXPECT_EQ(queue.TryPopLocal(0).value(), 1);
  EXPECT_FALSE(queue.PopWithTimeout(0, 1000).has_value());
}

TEST(ShardedTaskQueueTest, RehomeMovesResidueWithoutCounting) {
  ShardedTaskQueue<int> queue(4);
  queue.PushToShard(0, 1);
  queue.PushToShard(0, 2);
  queue.PushToShard(0, 3);
  EXPECT_EQ(queue.RehomeShard(0, {1, 2}), 3u);
  EXPECT_EQ(queue.ShardSize(0), 0u);
  EXPECT_EQ(queue.ShardSize(1) + queue.ShardSize(2), 3u);
  // Re-homing is neither an arrival nor a departure.
  EXPECT_EQ(queue.total_pushed(), 3u);
  EXPECT_EQ(queue.total_popped(), 0u);
}

TEST(ShardedTaskQueueTest, RehomeWithNoTargetsLeavesItems) {
  ShardedTaskQueue<int> queue(2);
  queue.PushToShard(0, 1);
  EXPECT_EQ(queue.RehomeShard(0, {}), 0u);
  EXPECT_EQ(queue.RehomeShard(0, {0}), 0u);  // Self is not a target.
  EXPECT_EQ(queue.ShardSize(0), 1u);
}

TEST(ShardedTaskQueueTest, CloseWhileStealingLosesNothing) {
  // Stealer threads race Close(): every pushed item must surface exactly
  // once and the counters must balance.
  ShardedTaskQueue<int> queue(4);
  constexpr int kItems = 4000;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> stealers;
  for (size_t c = 0; c < 4; ++c) {
    stealers.emplace_back([&queue, &sum, &consumed, c] {
      while (true) {
        auto v = queue.TryPop(c);  // Local pop, then steal.
        if (v.has_value()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
          continue;
        }
        if (queue.closed()) {
          // No pushes can land after close: a full scan (own shard plus
          // every sibling) that starts after observing closed and finds
          // nothing proves the queue is drained.
          v = queue.TryPop(c);
          if (!v.has_value()) {
            return;
          }
          sum.fetch_add(*v);
          consumed.fetch_add(1);
          continue;
        }
        std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(queue.Push(i));
  }
  queue.Close();
  for (auto& thread : stealers) {
    thread.join();
  }
  EXPECT_EQ(consumed.load(), kItems);
  const int64_t n = kItems;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  EXPECT_EQ(queue.total_pushed(), static_cast<uint64_t>(kItems));
  EXPECT_EQ(queue.total_popped(), static_cast<uint64_t>(kItems));
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(ShardedTaskQueueTest, CounterCoherenceUnderConcurrency) {
  // Producers round-robin across shards while consumers pop-and-steal;
  // aggregate pushed/popped (the PI controller's inputs) must agree with
  // the ground truth even mid-flight: popped never exceeds pushed.
  ShardedTaskQueue<int> queue(4);
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 3;
  std::vector<std::thread> threads;
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(i));
      }
    });
  }
  threads.emplace_back([&queue, &done] {
    while (!done.load()) {
      const uint64_t popped = queue.total_popped();
      const uint64_t pushed = queue.total_pushed();
      EXPECT_LE(popped, pushed);
      std::this_thread::yield();
    }
  });
  for (size_t c = 0; c < 3; ++c) {
    threads.emplace_back([&queue, &consumed, &done, c] {
      while (consumed.load() < kProducers * kPerProducer && !done.load()) {
        if (queue.TryPop(c).has_value()) {
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<size_t>(p)].join();
  }
  while (consumed.load() < kProducers * kPerProducer) {
    std::this_thread::yield();
  }
  done.store(true);
  for (size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(queue.total_pushed(), static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(queue.total_popped(), static_cast<uint64_t>(kProducers * kPerProducer));
}

// ------------------------------------------------------------------ Thread

TEST(ThreadTest, LatchBlocksUntilZero) {
  Latch latch(2);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  EXPECT_FALSE(released.load());
  latch.CountDown();
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(ThreadTest, LatchWaitForTimesOut) {
  Latch latch(1);
  EXPECT_FALSE(latch.WaitFor(1000));
  latch.CountDown();
  EXPECT_TRUE(latch.WaitFor(1000));
}

TEST(ThreadTest, WorkerPoolRunsTasks) {
  WorkerPool pool(4, "test");
  std::atomic<int> count{0};
  Latch latch(100);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      count.fetch_add(1);
      latch.CountDown();
    }));
  }
  latch.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadTest, WorkerPoolRejectsAfterShutdown) {
  WorkerPool pool(1, "test");
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

// ------------------------------------------------------------------ String

TEST(StringTest, SplitChar) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringTest, SplitStringSeparator) {
  auto parts = SplitString("a\r\nb\r\n", "\r\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringTest, CaseConversion) {
  EXPECT_EQ(ToLowerAscii("AbC-9"), "abc-9");
  EXPECT_EQ(ToUpperAscii("abC-9"), "ABC-9");
  EXPECT_TRUE(EqualsIgnoreCase("Content-Length", "content-length"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // Overflow.
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(StringTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("+7", &v));
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));
}

TEST(StringTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_FALSE(ParseDouble("2.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%05.1f", 2.25), "002.2");
}

TEST(StringTest, FormatHelpers) {
  EXPECT_EQ(FormatMicros(500), "500 us");
  EXPECT_EQ(FormatMicros(1500), "1.50 ms");
  EXPECT_EQ(FormatMicros(2500000), "2.500 s");
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024.0 * 1024.0), "3.00 MiB");
}

TEST(StringTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

}  // namespace
}  // namespace dbase
