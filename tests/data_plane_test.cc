// Tests for the zero-copy composition data plane: BufferSlice bounds
// enforcement, hostile/truncated wire input, slice lifetime (payloads keep
// their backing buffer alive), copy-on-write detach independence, the
// one-materialization-per-binding fan-out invariant, and scrub-no-leak for
// pooled contexts whose outputs were read back by reference.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/base/buffer.h"
#include "src/func/data.h"
#include "src/func/function.h"
#include "src/runtime/memory_context.h"
#include "src/runtime/platform.h"

namespace dandelion {
namespace {

using dbase::Buffer;
using dbase::BufferSlice;
using dfunc::DataItem;
using dfunc::DataSet;
using dfunc::DataSetList;

// ------------------------------------------------------------- BufferSlice

TEST(BufferSliceTest, MakeRejectsOutOfRange) {
  auto buffer = Buffer::FromString("0123456789");
  EXPECT_TRUE(BufferSlice::Make(buffer, 0, 10).ok());
  EXPECT_TRUE(BufferSlice::Make(buffer, 10, 0).ok());  // Empty tail slice.
  auto past_end = BufferSlice::Make(buffer, 8, 3);
  ASSERT_FALSE(past_end.ok());
  EXPECT_EQ(past_end.status().code(), dbase::StatusCode::kInvalidArgument);
  // Offset+size overflow must not wrap around into "in bounds".
  EXPECT_FALSE(BufferSlice::Make(buffer, 1, static_cast<size_t>(-1)).ok());
  EXPECT_FALSE(BufferSlice::Make(nullptr, 0, 1).ok());
}

TEST(BufferSliceTest, SubsliceIsRelativeAndChecked) {
  auto buffer = Buffer::FromString("abcdefgh");
  auto outer = BufferSlice::Make(buffer, 2, 4);  // "cdef"
  ASSERT_TRUE(outer.ok());
  auto inner = outer->Subslice(1, 2);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->view(), "de");
  EXPECT_EQ(inner->offset(), 3u);  // Absolute offset into the base buffer.
  // A subslice may not escape its parent's window even though the base
  // buffer has room.
  EXPECT_FALSE(outer->Subslice(2, 3).ok());
  EXPECT_FALSE(outer->Subslice(5, 0).ok());
}

TEST(BufferSliceTest, SliceOutlivesOriginalBufferHandle) {
  BufferSlice slice;
  {
    auto buffer = Buffer::FromString(std::string(1024, 'z') + "payload");
    slice = BufferSlice::Make(buffer, 1024, 7).value();
  }  // Last named handle gone; the slice's refcount keeps the bytes alive.
  EXPECT_EQ(slice.view(), "payload");
}

// ------------------------------------------------------------ Wire parsing

DataSetList TwoSets() {
  DataSetList sets;
  sets.push_back(DataSet{"alpha", {DataItem{"k1", "hello"}, DataItem{"", "world"}}});
  sets.push_back(DataSet{"beta", {DataItem{"", std::string(300, 'b')}}});
  return sets;
}

TEST(WireFormatTest, TruncatedInputIsAnErrorNotACrash) {
  const std::string wire = dfunc::MarshalSets(TwoSets());
  // Every proper prefix must fail cleanly on both unmarshal paths.
  for (size_t len : {size_t{0}, size_t{3}, size_t{7}, wire.size() / 2, wire.size() - 1}) {
    std::string truncated = wire.substr(0, len);
    auto copied = dfunc::UnmarshalSets(std::string_view(truncated));
    EXPECT_FALSE(copied.ok()) << "prefix " << len;
    EXPECT_EQ(copied.status().code(), dbase::StatusCode::kInvalidArgument);

    auto slice = BufferSlice(Buffer::FromString(std::move(truncated)));
    auto aliased = dfunc::UnmarshalSets(slice);
    EXPECT_FALSE(aliased.ok()) << "prefix " << len;
    EXPECT_EQ(aliased.status().code(), dbase::StatusCode::kInvalidArgument);
  }
}

TEST(WireFormatTest, HostileLengthFieldIsRejected) {
  DataSetList sets;
  sets.push_back(DataSet{"s", {DataItem{"", "0123456789"}}});
  std::string wire = dfunc::MarshalSets(sets);
  // The item payload length is the last u64 before the payload bytes.
  // Inflate it so it claims more bytes than the buffer holds.
  const size_t len_offset = wire.size() - 10 - 8;
  wire[len_offset] = '\xff';
  wire[len_offset + 1] = '\xff';
  auto copied = dfunc::UnmarshalSets(std::string_view(wire));
  EXPECT_FALSE(copied.ok());
  auto aliased = dfunc::UnmarshalSets(BufferSlice(Buffer::FromString(wire)));
  EXPECT_FALSE(aliased.ok());
  EXPECT_EQ(aliased.status().code(), dbase::StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, TrailingBytesAreRejected) {
  std::string wire = dfunc::MarshalSets(TwoSets()) + "extra";
  EXPECT_FALSE(dfunc::UnmarshalSets(std::string_view(wire)).ok());
  EXPECT_FALSE(dfunc::UnmarshalSets(BufferSlice(Buffer::FromString(wire))).ok());
}

TEST(WireFormatTest, AliasingUnmarshalSharesTheRequestBuffer) {
  const auto before = dfunc::DataPlaneStats::Get().snapshot();
  auto buffer = Buffer::FromString(dfunc::MarshalSets(TwoSets()));
  DataSetList sets;
  {
    auto result = dfunc::UnmarshalSets(BufferSlice(buffer));
    ASSERT_TRUE(result.ok());
    sets = std::move(result).value();
  }
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].items[0].data, "hello");
  EXPECT_EQ(sets[1].items[0].data, std::string(300, 'b'));
  // Payloads alias the wire buffer: same underlying base, no copies.
  ASSERT_TRUE(sets[0].items[0].data.aliased());
  EXPECT_EQ(sets[0].items[0].data.slice().buffer().get(), buffer.get());
  const auto after = dfunc::DataPlaneStats::Get().snapshot();
  EXPECT_GE(after.bytes_aliased - before.bytes_aliased, 310u);

  // Dropping our handle leaves the sets as the only owners; reads stay valid.
  const char* payload_ptr = sets[1].items[0].data.data();
  buffer.reset();
  EXPECT_EQ(std::string_view(payload_ptr, 300), std::string(300, 'b'));
}

TEST(WireFormatTest, ScatterChunksConcatenateToMarshalSets) {
  DataSetList sets = TwoSets();
  // Add a payload large enough to be emitted as an external chunk.
  sets[0].items.push_back(DataItem{"big", std::string(4096, 'q')});
  const std::string expected = dfunc::MarshalSets(sets);
  auto chunks = dfunc::MarshalSetsScatter(sets);
  std::string gathered;
  for (const auto& chunk : chunks) {
    gathered.append(chunk.view());
  }
  EXPECT_EQ(gathered, expected);
  EXPECT_GT(chunks.size(), 1u);  // The 4 KiB payload rode along by reference.
}

// ----------------------------------------------------------------- Payload

TEST(PayloadTest, CowDetachLeavesSiblingSlicesUntouched) {
  auto buffer = Buffer::FromString("shared-bytes");
  dfunc::Payload a{BufferSlice(buffer)};
  dfunc::Payload b{BufferSlice(buffer)};
  const auto before = dfunc::DataPlaneStats::Get().snapshot();
  a.MutableString() = "mutated!";
  const auto after = dfunc::DataPlaneStats::Get().snapshot();
  EXPECT_FALSE(a.aliased());  // Detached into an owned copy.
  EXPECT_TRUE(b.aliased());   // Sibling still aliases the original bytes.
  EXPECT_EQ(a, "mutated!");
  EXPECT_EQ(b, "shared-bytes");
  EXPECT_EQ(after.cow_detaches - before.cow_detaches, 1u);
}

TEST(PayloadTest, EnsureSharedPromotesWithoutCopy) {
  dfunc::Payload payload{std::string(2048, 'p')};
  const char* bytes_before = payload.data();
  const auto before = dfunc::DataPlaneStats::Get().snapshot();
  const auto& slice = payload.EnsureShared();
  EXPECT_TRUE(payload.aliased());
  // Promotion moves the string's storage: same bytes, no memcpy.
  EXPECT_EQ(slice.data(), bytes_before);
  EXPECT_EQ(dfunc::DataPlaneStats::Get().snapshot().payload_promotions -
                before.payload_promotions,
            1u);
  // Copies of a promoted payload are refcount bumps that read the same bytes.
  dfunc::Payload copy = payload;
  EXPECT_EQ(copy.data(), bytes_before);
}

// ------------------------------------------------- Fan-out sharing invariant

dbase::Status TagWithContext(dfunc::FunctionCtx& ctx) {
  const DataSet* piece = ctx.input_set("piece");
  const DataSet* shared = ctx.input_set("ctx");
  if (piece == nullptr || shared == nullptr) {
    return dbase::NotFound("missing input set");
  }
  std::string joined;
  for (const auto& item : piece->items) {
    joined += item.data;
  }
  ctx.EmitOutput("tagged", "[" + joined + ":" + std::to_string(shared->items.size()) + "]");
  return dbase::OkStatus();
}

dbase::Status SplitBytes(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string payload, ctx.SingleInput("in"));
  for (char c : payload) {
    ctx.EmitOutput("parts", std::string(1, c), std::string(1, c));
  }
  return dbase::OkStatus();
}

// An `each` fan-out of N instances with an `all` side input must
// materialize each non-fanout binding once — not once per instance — and
// account the (N-1) extra references as aliased, not copied bytes.
TEST(FanOutSharingTest, OneMaterializationPerBindingNotPerInstance) {
  PlatformConfig config;
  config.num_workers = 4;
  config.backend = IsolationBackend::kThread;
  config.sleep_for_modeled_latency = false;
  Platform platform(config);
  ASSERT_TRUE(platform.RegisterFunction({.name = "split", .body = SplitBytes}).ok());
  ASSERT_TRUE(platform.RegisterFunction({.name = "tagctx", .body = TagWithContext}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Fan(in) => out {
  split(in = all in) => (pieces = parts);
  tagctx(piece = each pieces, ctx = all in) => (out = tagged);
}
)")
                  .ok());

  const auto before = dfunc::DataPlaneStats::Get().snapshot();
  DataSetList args;
  args.push_back(DataSet{"in", {DataItem{"", "abcdefgh"}}});  // N = 8 instances.
  auto result = platform.Invoke("Fan", std::move(args));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)[0].items.size(), 8u);
  EXPECT_EQ((*result)[0].items[0].data, "[a:1]");
  const auto after = dfunc::DataPlaneStats::Get().snapshot();

  // Two non-fanout bindings ran: split's `in = all in` and tagctx's
  // `ctx = all in`. The 8-instance fan-out itself adds zero.
  EXPECT_EQ(after.binding_materializations - before.binding_materializations, 2u);
  // The shared `ctx` set was referenced by 7 extra instances by refcount.
  EXPECT_GT(after.bytes_aliased, before.bytes_aliased);
}

// ----------------------------------------------------- Scrub / alias safety

// Aliased output read-back pins the context through the keep-alive token;
// the region must reach the pool only after the last slice dies, and the
// next user of the recycled region must read zeros, never stale payload.
TEST(ScrubTest, PooledReuseAfterAliasedReadbackLeaksNothing) {
  // A capacity no other test uses, so this test observes its own recycling.
  constexpr uint64_t kCapacity = (1 << 20) + 7 * 4096;
  const std::string marker(MemoryContext::kAliasReadbackMinBytes, 'L');

  DataSetList outputs;
  {
    auto created = MemoryContext::Create(kCapacity, nullptr);
    ASSERT_TRUE(created.ok());
    std::shared_ptr<MemoryContext> ctx = std::move(created).value();
    DataSetList produced;
    produced.push_back(DataSet{"out", {DataItem{"", marker}}});
    ASSERT_TRUE(ctx->StoreOutcome(dbase::OkStatus(), produced).ok());

    auto loaded = ctx->LoadOutputSetsAliased(ctx);
    ASSERT_TRUE(loaded.ok());
    outputs = std::move(loaded).value();
    ASSERT_TRUE(outputs[0].items[0].data.aliased());
    // The payload really points into the context region (zero-copy).
    ASSERT_TRUE(ctx->Contains(outputs[0].items[0].data.data()));
  }  // `ctx` handle dropped — but the aliased outputs still pin the region.

  EXPECT_EQ(outputs[0].items[0].data, marker);

  // Releasing the last reference sends the region through the pool scrub.
  outputs.clear();
  auto reused = MemoryContext::Create(kCapacity, nullptr);
  ASSERT_TRUE(reused.ok());
  auto view = (*reused)->ReadAt(0, MemoryContext::kAliasReadbackMinBytes);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->find_first_not_of('\0'), std::string_view::npos);
}

// Small outputs fall back to the copying path: pinning a whole context's
// committed pages for a few bytes would defeat the pool.
TEST(ScrubTest, TinyOutputsAreCopiedNotAliased) {
  auto created = MemoryContext::Create(1 << 16, nullptr);
  ASSERT_TRUE(created.ok());
  std::shared_ptr<MemoryContext> ctx = std::move(created).value();
  DataSetList produced;
  produced.push_back(DataSet{"out", {DataItem{"", "tiny"}}});
  ASSERT_TRUE(ctx->StoreOutcome(dbase::OkStatus(), produced).ok());
  auto loaded = ctx->LoadOutputSetsAliased(ctx);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE((*loaded)[0].items[0].data.aliased());
  EXPECT_FALSE(ctx->Contains((*loaded)[0].items[0].data.data()));
}

}  // namespace
}  // namespace dandelion
