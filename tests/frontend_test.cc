// Tests for the epoll-based HTTP frontend: keep-alive reuse, pipelining
// with in-order responses, concurrent clients, slowloris/idle timeouts,
// non-blocking invocation, and the preserved 413/400 error contracts.
#include "src/runtime/frontend.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/func/builtins.h"
#include "src/http/http_parser.h"
#include "src/runtime/platform.h"

namespace dandelion {
namespace {

using dfunc::DataItem;
using dfunc::DataSet;
using dfunc::DataSetList;

PlatformConfig FastPlatformConfig() {
  PlatformConfig config;
  config.num_workers = 4;
  config.backend = IsolationBackend::kThread;
  config.sleep_for_modeled_latency = false;
  return config;
}

// Plain blocking TCP client socket connected to the frontend, with a read
// timeout so a frontend bug fails the test instead of hanging it.
int ConnectTo(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval timeout{};
  timeout.tv_sec = 5;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n = write(fd, data.data() + offset, data.size() - offset);
    ASSERT_GT(n, 0);
    offset += static_cast<size_t>(n);
  }
}

// Reads exactly one response off a keep-alive socket, leaving any pipelined
// extra bytes in *carry for the next call.
dbase::Result<dhttp::HttpResponse> ReadOneResponse(int fd, std::string* carry) {
  char buffer[8192];
  while (true) {
    auto head = dhttp::ScanMessageHead(*carry, 1 << 20);
    if (!head.ok()) {
      return head.status();
    }
    if (head->has_value()) {
      const size_t total = (*head)->head_bytes + static_cast<size_t>((*head)->content_length);
      if (carry->size() >= total) {
        auto response = dhttp::ParseResponse(std::string_view(*carry).substr(0, total));
        carry->erase(0, total);
        return response;
      }
    }
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      return dbase::Unavailable("connection closed mid-response");
    }
    carry->append(buffer, static_cast<size_t>(n));
  }
}

std::string RawInvoke(const std::string& composition, const std::string& body) {
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kPost;
  request.target = "/invoke/" + composition;
  request.headers.Add("X-Dandelion-Raw", "1");
  request.body = body;
  return request.Serialize();
}

std::string RawInvokeWithHeaders(
    const std::string& composition, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kPost;
  request.target = "/invoke/" + composition;
  request.headers.Add("X-Dandelion-Raw", "1");
  for (const auto& [name, value] : headers) {
    request.headers.Add(name, value);
  }
  request.body = body;
  return request.Serialize();
}

std::string Healthz() { return "GET /healthz HTTP/1.1\r\n\r\n"; }

// Echo body for invocation responses: unmarshal and return the first item.
std::string FirstItem(const dhttp::HttpResponse& response) {
  auto sets = dfunc::UnmarshalSets(response.body);
  if (!sets.ok() || sets->empty() || (*sets)[0].items.empty()) {
    return "<unmarshal failed>";
  }
  return (*sets)[0].items[0].data.ToString();
}

// A compute function that holds an engine worker for a while before
// echoing — stands in for a genuinely slow invocation.
dbase::Status SlowEcho(dfunc::FunctionCtx& ctx) {
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  return dfunc::EchoFunction(ctx);
}

// Runs until cancelled (or a 2 s backstop): observes client-disconnect
// cancellation from inside the sandbox.
dbase::Status HoldUntilCancelled(dfunc::FunctionCtx& ctx) {
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!ctx.cancelled() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return dfunc::EchoFunction(ctx);
}

class FrontendFixture {
 public:
  explicit FrontendFixture(FrontendConfig config = FrontendConfig{})
      : platform_(FastPlatformConfig()), frontend_(&platform_, config) {
    EXPECT_TRUE(platform_.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
    EXPECT_TRUE(platform_.RegisterFunction({.name = "slow", .body = SlowEcho}).ok());
    EXPECT_TRUE(
        platform_.RegisterFunction({.name = "hold", .body = HoldUntilCancelled}).ok());
    EXPECT_TRUE(platform_
                    .RegisterCompositionDsl(R"(
composition Id(in) => out { echo(in = all in) => (out = out); }
composition Slow(in) => out { slow(in = all in) => (out = out); }
composition Hold(in) => out { hold(in = all in) => (out = out); }
)")
                    .ok());
    started_ = frontend_.Start();
  }

  bool skipped() const { return !started_.ok(); }
  std::string skip_reason() const { return started_.ToString(); }
  uint16_t port() const { return frontend_.port(); }
  Platform& platform() { return platform_; }

 private:
  Platform platform_;
  HttpFrontend frontend_;
  dbase::Status started_;
};

#define SKIP_WITHOUT_LOOPBACK(fixture)                                   \
  if ((fixture).skipped()) {                                             \
    GTEST_SKIP() << "loopback sockets unavailable: " << (fixture).skip_reason(); \
  }

TEST(FrontendTest, KeepAliveReusesOneSocket) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  std::string carry;
  SendAll(fd, RawInvoke("Id", "first"));
  auto first = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status_code, 200);
  EXPECT_EQ(FirstItem(*first), "first");

  // Same socket, second request: the connection survived the first
  // response instead of being closed per-request.
  SendAll(fd, RawInvoke("Id", "second"));
  auto second = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status_code, 200);
  EXPECT_EQ(FirstItem(*second), "second");
  close(fd);
}

TEST(FrontendTest, PipelinedRequestsAnsweredInOrder) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  // All requests on the wire before any response is read. The first runs
  // on the slow path, so later completions finish first internally — the
  // responses must still come back in request order.
  std::string burst = RawInvoke("Slow", "a");
  for (const char* payload : {"b", "c", "d"}) {
    burst += RawInvoke("Id", payload);
  }
  SendAll(fd, burst);

  std::string carry;
  for (const char* expected : {"a", "b", "c", "d"}) {
    auto response = ReadOneResponse(fd, &carry);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status_code, 200);
    EXPECT_EQ(FirstItem(*response), expected);
  }
  close(fd);
}

TEST(FrontendTest, PipelineDeeperThanBackpressureLimitFullyAnswered) {
  // Pipeline more inline-answered requests than the backpressure depth in
  // one write: capacity re-opens as slots complete inline, and every
  // buffered request must still be parsed and answered (no EPOLLIN edge
  // will fire again for bytes already read).
  FrontendConfig config;
  config.max_pipeline_depth = 4;
  FrontendFixture fixture(config);
  SKIP_WITHOUT_LOOPBACK(fixture);

  constexpr int kRequests = 11;
  const int fd = ConnectTo(fixture.port());
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += Healthz();
  }
  SendAll(fd, burst);
  std::string carry;
  for (int i = 0; i < kRequests; ++i) {
    auto response = ReadOneResponse(fd, &carry);
    ASSERT_TRUE(response.ok()) << "response " << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status_code, 200);
  }
  close(fd);
}

TEST(FrontendTest, ConcurrentClientsEachGetTheirOwnResponses) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 4;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&fixture, &failures, c] {
      const int fd = ConnectTo(fixture.port());
      std::string carry;
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::string payload =
            "client-" + std::to_string(c) + "-req-" + std::to_string(r);
        SendAll(fd, RawInvoke("Id", payload));
        auto response = ReadOneResponse(fd, &carry);
        if (!response.ok() || response->status_code != 200 ||
            FirstItem(*response) != payload) {
          ++failures[c];
        }
      }
      close(fd);
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
}

TEST(FrontendTest, SlowInvocationDoesNotDelayHealthzOnAnotherConnection) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  // Start a slow invocation but do not read its response yet.
  const int slow_fd = ConnectTo(fixture.port());
  SendAll(slow_fd, RawInvoke("Slow", "held"));

  // While it runs on an engine worker, /healthz on a second connection
  // must answer immediately — the loop thread never blocks on engine work.
  const int health_fd = ConnectTo(fixture.port());
  const dbase::Stopwatch watch;
  SendAll(health_fd, Healthz());
  std::string health_carry;
  auto health = ReadOneResponse(health_fd, &health_carry);
  const dbase::Micros health_latency = watch.ElapsedMicros();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code, 200);
  // The slow function holds its worker for 400 ms; well under half of that
  // proves /healthz was not serialized behind it.
  EXPECT_LT(health_latency, 200 * dbase::kMicrosPerMilli);
  close(health_fd);

  std::string slow_carry;
  auto slow = ReadOneResponse(slow_fd, &slow_carry);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_EQ(slow->status_code, 200);
  EXPECT_EQ(FirstItem(*slow), "held");
  close(slow_fd);
}

TEST(FrontendTest, SlowlorisConnectionTimedOutWithoutStallingHealthz) {
  FrontendConfig config;
  config.idle_timeout = 150 * dbase::kMicrosPerMilli;
  FrontendFixture fixture(config);
  SKIP_WITHOUT_LOOPBACK(fixture);

  // A client that sends a partial header and then goes silent.
  const int slow_fd = ConnectTo(fixture.port());
  SendAll(slow_fd, "GET /hea");

  // Healthy traffic is unaffected while the slow client idles.
  const int health_fd = ConnectTo(fixture.port());
  SendAll(health_fd, Healthz());
  std::string carry;
  auto health = ReadOneResponse(health_fd, &carry);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code, 200);
  close(health_fd);

  // The idle timer reaps the stalled connection: the next read sees EOF
  // (no response bytes were owed). SO_RCVTIMEO bounds the wait at 5 s.
  char buffer[64];
  const ssize_t n = read(slow_fd, buffer, sizeof(buffer));
  EXPECT_EQ(n, 0) << "slowloris connection was not closed";
  close(slow_fd);
}

TEST(FrontendTest, OversizedHeaderBlockRejectedWith413) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  // 80 KiB of headers without a terminating blank line: over the 64 KiB
  // header cap (the 64 MiB limit applies to bodies only).
  std::string wire = "GET /healthz HTTP/1.1\r\n";
  while (wire.size() < 80 * 1024) {
    wire += "X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  SendAll(fd, wire);
  std::string carry;
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 413);
  close(fd);
}

TEST(FrontendTest, ConflictingContentLengthRejectedWith400) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  SendAll(fd,
          "POST /invoke/Id HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello");
  std::string carry;
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 400);
  close(fd);
}

TEST(FrontendTest, IdenticalDuplicateContentLengthTolerated) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  SendAll(fd,
          "POST /invoke/Id HTTP/1.1\r\nX-Dandelion-Raw: 1\r\n"
          "Content-Length: 4\r\nContent-Length: 4\r\n\r\nping");
  std::string carry;
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(FirstItem(*response), "ping");
  close(fd);
}

TEST(FrontendTest, HalfClosedClientStillGetsItsResponse) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  // Send a complete request, then half-close: the request bytes and the
  // EOF may arrive in the same readable event, and the buffered request
  // must still be answered before the server closes.
  const int fd = ConnectTo(fixture.port());
  SendAll(fd, RawInvoke("Id", "fire-and-shutdown"));
  ASSERT_EQ(shutdown(fd, SHUT_WR), 0);

  std::string carry;
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(FirstItem(*response), "fire-and-shutdown");
  char buffer[16];
  EXPECT_EQ(read(fd, buffer, sizeof(buffer)), 0);  // Server closed after it.
  close(fd);
}

TEST(FrontendTest, HalfCloseAfterBurstDeeperThanBackpressureAnswersEverything) {
  // The client's data and EOF can arrive together with more requests
  // buffered than the pipeline depth admits; the parked tail must still be
  // answered after slots free up — EOF only means "no more requests", not
  // "drop the ones already delivered".
  FrontendConfig config;
  config.max_pipeline_depth = 2;
  FrontendFixture fixture(config);
  SKIP_WITHOUT_LOOPBACK(fixture);

  constexpr int kRequests = 5;
  const int fd = ConnectTo(fixture.port());
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += RawInvoke("Id", "r" + std::to_string(i));
  }
  SendAll(fd, burst);
  ASSERT_EQ(shutdown(fd, SHUT_WR), 0);

  std::string carry;
  for (int i = 0; i < kRequests; ++i) {
    auto response = ReadOneResponse(fd, &carry);
    ASSERT_TRUE(response.ok()) << "response " << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status_code, 200);
    EXPECT_EQ(FirstItem(*response), "r" + std::to_string(i));
  }
  char buffer[16];
  EXPECT_EQ(read(fd, buffer, sizeof(buffer)), 0);
  close(fd);
}

TEST(FrontendTest, TrickleSlowlorisHitsAbsoluteRequestDeadline) {
  // One header byte per interval shorter than idle_timeout defeats a pure
  // inactivity check; the absolute request deadline still reaps it.
  FrontendConfig config;
  config.idle_timeout = 150 * dbase::kMicrosPerMilli;
  config.request_timeout = 400 * dbase::kMicrosPerMilli;
  FrontendFixture fixture(config);
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  const std::string_view drip = "GET /healthz HTT";  // Never completes.
  bool closed = false;
  const dbase::Stopwatch watch;
  for (size_t i = 0; watch.ElapsedMicros() < 3 * dbase::kMicrosPerSecond; i = (i + 1) % drip.size()) {
    // MSG_NOSIGNAL: a write after the server closes must surface as EPIPE,
    // not kill the test binary with SIGPIPE.
    if (send(fd, &drip[i], 1, MSG_NOSIGNAL) <= 0) {
      closed = true;  // Server reaped us despite steady trickling.
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(75));
  }
  EXPECT_TRUE(closed) << "trickling client was never reaped";
  // Deadline (400 ms) + reaper lag (≤ idle_timeout) + slack, not 3 s.
  EXPECT_LT(watch.ElapsedMicros(), 2 * dbase::kMicrosPerSecond);
  close(fd);
}

TEST(FrontendTest, DeadlineHeaderMapsTo504) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  // The Slow composition needs 400 ms; a 50 ms deadline must answer 504
  // near the deadline instead of waiting out the invocation.
  const dbase::Stopwatch watch;
  SendAll(fd, RawInvokeWithHeaders("Slow", "late", {{"X-Dandelion-Deadline-Ms", "50"}}));
  std::string carry;
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 504);
  EXPECT_LT(watch.ElapsedMicros(), 350 * dbase::kMicrosPerMilli);
  EXPECT_EQ(fixture.platform().dispatcher_stats().invocations_deadline_exceeded, 1u);
  close(fd);
}

TEST(FrontendTest, InvalidDeadlineAndPriorityHeadersRejected) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  std::string carry;
  SendAll(fd, RawInvokeWithHeaders("Id", "x", {{"X-Dandelion-Deadline-Ms", "soon"}}));
  auto bad_deadline = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(bad_deadline.ok()) << bad_deadline.status().ToString();
  EXPECT_EQ(bad_deadline->status_code, 400);

  SendAll(fd, RawInvokeWithHeaders("Id", "x", {{"X-Dandelion-Priority", "urgent"}}));
  auto bad_priority = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(bad_priority.ok()) << bad_priority.status().ToString();
  EXPECT_EQ(bad_priority->status_code, 400);

  // Valid values still work.
  SendAll(fd, RawInvokeWithHeaders("Id", "ok",
                                   {{"X-Dandelion-Priority", "batch"},
                                    {"X-Dandelion-Deadline-Ms", "5000"}}));
  auto good = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->status_code, 200);
  EXPECT_EQ(FirstItem(*good), "ok");
  close(fd);
}

TEST(FrontendTest, AdmissionControlShedsWith429) {
  FrontendConfig config;
  config.max_inflight_interactive = 1;
  FrontendFixture fixture(config);
  SKIP_WITHOUT_LOOPBACK(fixture);

  // First request occupies the single interactive slot for 400 ms.
  const int slow_fd = ConnectTo(fixture.port());
  SendAll(slow_fd, RawInvoke("Slow", "occupies-the-slot"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // Let it admit.

  // Second request is shed immediately instead of queueing behind it.
  const int shed_fd = ConnectTo(fixture.port());
  const dbase::Stopwatch watch;
  SendAll(shed_fd, RawInvoke("Id", "shed-me"));
  std::string shed_carry;
  auto shed = ReadOneResponse(shed_fd, &shed_carry);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status_code, 429);
  EXPECT_LT(watch.ElapsedMicros(), 200 * dbase::kMicrosPerMilli);
  close(shed_fd);

  // The admitted request still completes normally.
  std::string slow_carry;
  auto slow = ReadOneResponse(slow_fd, &slow_carry);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_EQ(slow->status_code, 200);
  close(slow_fd);

  // Capacity freed: the next interactive request is admitted again.
  const int again_fd = ConnectTo(fixture.port());
  SendAll(again_fd, RawInvoke("Id", "admitted-again"));
  std::string again_carry;
  auto again = ReadOneResponse(again_fd, &again_carry);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->status_code, 200);
  close(again_fd);
}

TEST(FrontendTest, CompositionsEndpointListsRegisteredNames) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  SendAll(fd, "GET /compositions HTTP/1.1\r\n\r\n");
  std::string carry;
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->headers.Get("Content-Type").value_or(""), "application/json");
  EXPECT_NE(response->body.find("\"Id\""), std::string::npos) << response->body;
  EXPECT_NE(response->body.find("\"Slow\""), std::string::npos) << response->body;
  close(fd);
}

TEST(FrontendTest, StatzEndpointExposesLifecycleCounters) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  std::string carry;
  SendAll(fd, RawInvoke("Id", "warm-up"));
  auto invoked = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(invoked.ok()) << invoked.status().ToString();
  ASSERT_EQ(invoked->status_code, 200);

  SendAll(fd, "GET /statz HTTP/1.1\r\n\r\n");
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  for (const char* key :
       {"\"invocations_cancelled\"", "\"invocations_deadline_exceeded\"",
        "\"inflight_interactive\"", "\"inflight_batch\"", "\"shed_429\"",
        "\"deadline_504\"", "\"compute_aborted\"", "\"open_connections\"",
        "\"control_plane\"", "\"compute_workers\"", "\"comm_workers\""}) {
    EXPECT_NE(response->body.find(key), std::string::npos) << key << " missing in\n"
                                                           << response->body;
  }
  EXPECT_NE(response->body.find("\"invocations_completed\":1"), std::string::npos)
      << response->body;
  // The default fixture runs without a control plane: /statz says so but
  // still reports the static core split.
  EXPECT_NE(response->body.find("\"enabled\":false"), std::string::npos) << response->body;
  close(fd);
}

TEST(FrontendTest, StatzReportsControlPlanePolicyAndSplit) {
  PlatformConfig platform_config = FastPlatformConfig();
  platform_config.enable_control_plane = true;
  // Long interval: decisions in this test come only from the startup ticks,
  // keeping the core split stable while we read it.
  platform_config.control_interval_us = 10 * dbase::kMicrosPerSecond;
  platform_config.elasticity_policy = dpolicy::PolicyKind::kHysteresis;
  Platform platform(platform_config);
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Id(in) => out { echo(in = all in) => (out = out); }")
                  .ok());
  HttpFrontend frontend(&platform, FrontendConfig{});
  const dbase::Status started = frontend.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }

  const int fd = ConnectTo(frontend.port());
  std::string carry;
  SendAll(fd, "GET /statz HTTP/1.1\r\n\r\n");
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_NE(response->body.find("\"enabled\":true"), std::string::npos) << response->body;
  EXPECT_NE(response->body.find("\"policy\":\"hysteresis\""), std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("\"shifts_toward_compute\""), std::string::npos)
      << response->body;
  close(fd);
  frontend.Stop();
}

TEST(FrontendTest, StatzEscapesHostileFunctionNamesInPoolTargets) {
  PlatformConfig platform_config = FastPlatformConfig();
  platform_config.enable_sandbox_pool = true;
  Platform platform(platform_config);
  // A registered name carrying a quote and a backslash must not corrupt
  // the /statz document. The pool tracks a function once dispatch asks for
  // it, so drive Acquire + Tick directly to materialize a targets entry.
  dfunc::FunctionSpec hostile;
  hostile.name = "evil\"name\\fn";
  hostile.body = dfunc::EchoFunction;
  platform.sandbox_pool()->Acquire(hostile, PriorityClass::kInteractive);
  platform.sandbox_pool()->Tick(0);

  HttpFrontend frontend(&platform, FrontendConfig{});
  const dbase::Status started = frontend.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }
  const int fd = ConnectTo(frontend.port());
  std::string carry;
  SendAll(fd, "GET /statz HTTP/1.1\r\n\r\n");
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  // The name appears in its escaped JSON form, never raw.
  EXPECT_NE(response->body.find("evil\\\"name\\\\fn"), std::string::npos) << response->body;
  // And the document's unescaped quotes still balance — the key did not
  // terminate a string early.
  size_t quotes = 0;
  for (size_t i = 0; i < response->body.size(); ++i) {
    if (response->body[i] == '"' && (i == 0 || response->body[i - 1] != '\\')) {
      ++quotes;
    }
  }
  EXPECT_EQ(quotes % 2, 0u) << response->body;
  close(fd);
  frontend.Stop();
}

TEST(FrontendTest, ClientDisconnectCancelsInFlightInvocation) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  SendAll(fd, RawInvoke("Hold", "abandoned"));
  // Wait until the invocation is actually running in an engine.
  const dbase::Micros start_deadline =
      dbase::MonotonicClock::Get()->NowMicros() + 2 * dbase::kMicrosPerSecond;
  while (fixture.platform().dispatcher_stats().invocations_started == 0 &&
         dbase::MonotonicClock::Get()->NowMicros() < start_deadline) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Abort the connection with an RST (SO_LINGER 0) — a vanished client,
  // not a polite half-close.
  linger hard_close{};
  hard_close.l_onoff = 1;
  hard_close.l_linger = 0;
  ASSERT_EQ(setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close)), 0);
  close(fd);

  // The frontend must cancel the orphaned invocation instead of letting it
  // run its 2 s course.
  const dbase::Micros cancel_deadline =
      dbase::MonotonicClock::Get()->NowMicros() + 2 * dbase::kMicrosPerSecond;
  while (fixture.platform().dispatcher_stats().invocations_cancelled == 0 &&
         dbase::MonotonicClock::Get()->NowMicros() < cancel_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fixture.platform().dispatcher_stats().invocations_cancelled, 1u);
}

TEST(FrontendTest, ConnectionCloseHonored) {
  FrontendFixture fixture;
  SKIP_WITHOUT_LOOPBACK(fixture);

  const int fd = ConnectTo(fixture.port());
  SendAll(fd, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  std::string carry;
  auto response = ReadOneResponse(fd, &carry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  // The server closes its side after the response.
  char buffer[16];
  EXPECT_EQ(read(fd, buffer, sizeof(buffer)), 0);
  close(fd);
}

}  // namespace
}  // namespace dandelion
