// Additional coverage: engine observability, frontend registration
// endpoint, simulator model details, SQL corner cases, DSL stress, and
// trace invariants that the primary suites do not reach.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/base/clock.h"
#include "src/base/thread.h"
#include "src/dsl/parser.h"
#include "src/func/builtins.h"
#include "src/http/http_parser.h"
#include "src/http/services.h"
#include "src/runtime/frontend.h"
#include "src/runtime/platform.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sql/operators.h"
#include "src/trace/azure_trace.h"

namespace {

using dbase::kMicrosPerSecond;

// ------------------------------------------------------ Engine observability

TEST(EngineStatsTest, QueueWaitPercentilesPopulated) {
  dandelion::PlatformConfig config;
  config.num_workers = 2;
  config.sleep_for_modeled_latency = false;
  dandelion::Platform platform(config);
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(
                      "composition Id(in) => out { echo(in = all in) => (out = out); }")
                  .ok());
  for (int i = 0; i < 20; ++i) {
    dfunc::DataSetList args;
    args.push_back(dfunc::DataSet{"in", {dfunc::DataItem{"", "x"}}});
    ASSERT_TRUE(platform.Invoke("Id", std::move(args)).ok());
  }
  const auto stats = platform.engine_stats();
  EXPECT_EQ(stats.compute_tasks, 20u);
  // Waits are recorded (p99 ≥ p50; both bounded by something sane).
  EXPECT_GE(stats.compute_wait_p99_us, stats.compute_wait_p50_us);
  EXPECT_LT(stats.compute_wait_p99_us, 10u * 1000 * 1000);
}

// ----------------------------------------------------------------- Frontend

std::string RoundTripHttp(uint16_t port, const dhttp::HttpRequest& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string wire = request.Serialize();
  EXPECT_EQ(write(fd, wire.data(), wire.size()), static_cast<ssize_t>(wire.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
    if (response.find("\r\n\r\n") != std::string::npos) {
      break;
    }
  }
  close(fd);
  return response;
}

TEST(FrontendTest, RegisterCompositionEndpoint) {
  dandelion::PlatformConfig config;
  config.num_workers = 2;
  config.sleep_for_modeled_latency = false;
  dandelion::Platform platform(config);
  ASSERT_TRUE(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}).ok());

  dandelion::HttpFrontend frontend(&platform, 0);
  auto started = frontend.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }

  dhttp::HttpRequest reg;
  reg.method = dhttp::Method::kPost;
  reg.target = "/register/composition";
  reg.body = "composition Id(in) => out { echo(in = all in) => (out = out); }";
  auto response = dhttp::ParseResponse(RoundTripHttp(frontend.port(), reg));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 201);
  EXPECT_TRUE(platform.compositions().Contains("Id"));

  // Bad DSL → 400.
  reg.body = "composition Broken(";
  response = dhttp::ParseResponse(RoundTripHttp(frontend.port(), reg));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 400);

  // Unknown endpoint → 404.
  dhttp::HttpRequest bogus;
  bogus.method = dhttp::Method::kGet;
  bogus.target = "/nope";
  response = dhttp::ParseResponse(RoundTripHttp(frontend.port(), bogus));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 404);

  // Health endpoint.
  dhttp::HttpRequest health;
  health.method = dhttp::Method::kGet;
  health.target = "/healthz";
  response = dhttp::ParseResponse(RoundTripHttp(frontend.port(), health));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  frontend.Stop();
}

// ---------------------------------------------------------- Simulator models

TEST(SimModelTest, VmExecOverheadAppliedToWarmRequests) {
  dsim::AppShape shape;
  shape.compute_us = 10000;
  shape.compute_jitter = 0.0;
  const auto requests = dsim::PoissonStream(shape, 5.0, 2 * kMicrosPerSecond, 3);
  auto config = dsim::VmSimConfig::FirecrackerSnapshot(4, 1.0);  // All warm.
  config.exec_overhead = 1.5;
  const auto metrics = dsim::SimulateVmPlatform(config, requests);
  // warm path + 1.5x exec.
  EXPECT_NEAR(metrics.latency_ms.Median(), 15.0 + config.warm_path_us / 1000.0, 1.0);
}

TEST(SimModelTest, DandelionPaysSandboxPerPhase) {
  dsim::AppShape one_phase;
  one_phase.compute_us = 1000;
  one_phase.compute_jitter = 0.0;
  dsim::AppShape four_phases = one_phase;
  four_phases.phases = 4;
  four_phases.compute_us = 250;  // Same total compute.

  dsim::DandelionSimConfig config;
  config.cores = 4;
  config.enable_controller = false;
  const auto single =
      dsim::SimulateDandelion(config, dsim::PoissonStream(one_phase, 5, kMicrosPerSecond, 1));
  const auto chained =
      dsim::SimulateDandelion(config, dsim::PoissonStream(four_phases, 5, kMicrosPerSecond, 1));
  // Four sandboxes + dispatches instead of one: ~3 extra cost units.
  const double extra_ms =
      3.0 * (config.sandbox_us + config.dispatch_us) / 1000.0;
  EXPECT_NEAR(chained.latency_ms.Median() - single.latency_ms.Median(), extra_ms, 0.5);
}

TEST(SimModelTest, WasmtimePaysSandboxPerPhaseToo) {
  dsim::AppShape four_phases;
  four_phases.phases = 4;
  four_phases.compute_us = 250;
  four_phases.compute_jitter = 0.0;
  dsim::WasmtimeSimConfig config;
  config.cores = 4;
  const auto metrics = dsim::SimulateWasmtime(
      config, dsim::PoissonStream(four_phases, 5, kMicrosPerSecond, 2));
  const double expected_ms =
      4.0 * (config.sandbox_us + config.dispatch_us + 250 * config.slowdown) / 1000.0;
  EXPECT_NEAR(metrics.latency_ms.Median(), expected_ms, 0.5);
}

TEST(SimModelTest, GvisorBetweenFreshAndSnapshotFirecracker) {
  dsim::AppShape tiny;
  tiny.compute_us = dsim::Calibration::kMatmul1x1Us;
  tiny.compute_jitter = 0.0;
  const auto requests = dsim::PoissonStream(tiny, 10, 2 * kMicrosPerSecond, 5);
  const auto fresh =
      dsim::SimulateVmPlatform(dsim::VmSimConfig::FirecrackerFresh(4, 0.0), requests);
  const auto snap =
      dsim::SimulateVmPlatform(dsim::VmSimConfig::FirecrackerSnapshot(4, 0.0), requests);
  const auto gvisor = dsim::SimulateVmPlatform(dsim::VmSimConfig::Gvisor(4, 0.0), requests);
  EXPECT_GT(gvisor.latency_ms.Median(), snap.latency_ms.Median());
  EXPECT_LT(gvisor.latency_ms.Median(), fresh.latency_ms.Median());
}

TEST(SimModelTest, HotFractionMonotonicallyImprovesTail) {
  dsim::AppShape matmul;
  matmul.compute_us = dsim::Calibration::kMatmul128Us;
  matmul.compute_jitter = 0.0;
  const auto requests = dsim::PoissonStream(matmul, 200, 4 * kMicrosPerSecond, 7);
  double previous = 1e18;
  for (double hot : {0.90, 0.95, 0.99, 1.0}) {
    const auto metrics =
        dsim::SimulateVmPlatform(dsim::VmSimConfig::FirecrackerSnapshot(16, hot), requests);
    const double p995 = metrics.latency_ms.Percentile(99.5);
    EXPECT_LE(p995, previous * 1.05);  // Allow tiny sampling noise.
    previous = p995;
  }
}

// ------------------------------------------------------------- SQL corners

TEST(SqlCornerTest, SortByIsStable) {
  dsql::Table t("t");
  ASSERT_TRUE(t.AddColumn("k", dsql::Column::Ints({1, 1, 1, 1})).ok());
  ASSERT_TRUE(
      t.AddColumn("tag", dsql::Column::Strings({"first", "second", "third", "fourth"})).ok());
  auto sorted = dsql::SortBy(t, {{"k", false}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->GetColumn("tag").value()->strings(),
            (std::vector<std::string>{"first", "second", "third", "fourth"}));
}

TEST(SqlCornerTest, ComputedStringColumn) {
  dsql::Table t("t");
  ASSERT_TRUE(t.AddColumn("s", dsql::Column::Strings({"a", "b"})).ok());
  auto computed = dsql::WithComputedColumn(t, "copy", dsql::Col("s"));
  ASSERT_TRUE(computed.ok());
  EXPECT_EQ(computed->GetColumn("copy").value()->strings(),
            (std::vector<std::string>{"a", "b"}));
}

TEST(SqlCornerTest, FilterOnMissingColumnFailsCleanly) {
  dsql::Table t("t");
  ASSERT_TRUE(t.AddColumn("a", dsql::Column::Ints({1})).ok());
  auto filtered = dsql::Filter(t, dsql::Eq(dsql::Col("ghost"), dsql::Lit(int64_t{1})));
  EXPECT_FALSE(filtered.ok());
  EXPECT_EQ(filtered.status().code(), dbase::StatusCode::kNotFound);
}

TEST(SqlCornerTest, JoinWithEmptySides) {
  dsql::Table empty("e");
  ASSERT_TRUE(empty.AddColumn("k", dsql::Column::Ints({})).ok());
  dsql::Table full("f");
  ASSERT_TRUE(full.AddColumn("k2", dsql::Column::Ints({1, 2})).ok());
  auto left_empty = dsql::HashJoin(empty, "k", full, "k2");
  ASSERT_TRUE(left_empty.ok());
  EXPECT_EQ(left_empty->NumRows(), 0u);
  auto right_empty = dsql::HashJoin(full, "k2", empty, "k");
  ASSERT_TRUE(right_empty.ok());
  EXPECT_EQ(right_empty->NumRows(), 0u);
}

// ---------------------------------------------------------------- DSL stress

TEST(DslStressTest, LongChainParsesAndValidates) {
  std::string source = "composition Chain(v0) => v64 {\n";
  for (int i = 0; i < 64; ++i) {
    source += "  f" + std::to_string(i) + "(in = all v" + std::to_string(i) + ") => (v" +
              std::to_string(i + 1) + " = out);\n";
  }
  source += "}\n";
  auto ast = ddsl::ParseSingleComposition(source);
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  auto graph = ddsl::CompositionGraph::FromAst(*ast);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->nodes().size(), 64u);
  EXPECT_EQ(graph->topo_order().front(), 0u);
  EXPECT_EQ(graph->topo_order().back(), 63u);
}

TEST(DslStressTest, CommentOnlySourceIsError) {
  EXPECT_FALSE(ddsl::ParseCompositions("// nothing here\n# nor here\n").ok());
}

TEST(DslStressTest, WideParameterLists) {
  std::string source = "composition Wide(";
  for (int i = 0; i < 20; ++i) {
    source += (i != 0 ? ", p" : "p") + std::to_string(i);
  }
  source += ") => out { f(a = all p0) => (out = o); }";
  auto ast = ddsl::ParseSingleComposition(source);
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->params.size(), 20u);
}

// ------------------------------------------------------------ Trace details

TEST(TraceDetailTest, DurationsBoundedBelow) {
  dtrace::AzureTraceConfig config;
  config.num_functions = 30;
  config.duration_minutes = 3;
  const auto trace = dtrace::SynthesizeAzureTrace(config);
  for (const auto& arrival : trace.ToArrivals(9)) {
    EXPECT_GE(arrival.duration_us, 1000);
  }
}

TEST(TraceDetailTest, MemoryWithinConfiguredRange) {
  dtrace::AzureTraceConfig config;
  config.num_functions = 50;
  const auto trace = dtrace::SynthesizeAzureTrace(config);
  for (const auto& fn : trace.functions) {
    EXPECT_GE(fn.memory_bytes, 64ull << 20);
    EXPECT_LT(fn.memory_bytes, 513ull << 20);
  }
}

TEST(TraceDetailTest, ArrivalSeedsIndependentOfEachOther) {
  dtrace::AzureTraceConfig config;
  config.num_functions = 10;
  config.duration_minutes = 2;
  const auto trace = dtrace::SynthesizeAzureTrace(config);
  const auto a = trace.ToArrivals(1);
  const auto b = trace.ToArrivals(2);
  const auto a2 = trace.ToArrivals(1);
  ASSERT_EQ(a.size(), a2.size());
  EXPECT_EQ(a.size(), b.size());  // Counts fixed by the trace...
  bool any_difference = false;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    EXPECT_EQ(a[i].time_us, a2[i].time_us);  // Same seed → same placement.
    if (a[i].time_us != b[i].time_us) {
      any_difference = true;  // Different seed → different placement.
    }
  }
  EXPECT_TRUE(any_difference);
}

// ------------------------------------------------------- Services hardening

TEST(ServiceHardeningTest, ObjectStoreHandlesHugeObjects) {
  dhttp::ObjectStoreService store;
  const std::string big(4 << 20, 'x');
  store.PutObject("/big", big);
  EXPECT_EQ(store.ObjectSize("/big"), big.size());
}

TEST(ServiceHardeningTest, SanitizerRejectsOversizedRequests) {
  std::string huge = "POST http://h.x/ HTTP/1.1\r\nContent-Length: ";
  const size_t body_size = 65 * 1024 * 1024;  // Over the 64 MiB guard.
  huge += std::to_string(body_size);
  huge += "\r\n\r\n";
  huge.append(body_size, 'a');
  EXPECT_FALSE(dhttp::SanitizeRequest(huge).ok());
}

}  // namespace
