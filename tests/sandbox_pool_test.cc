// Tests for the pre-warmed sandbox pool: the PrewarmPolicy decision logic
// under a fake clock, the SandboxPool acquire/scrub/return lifecycle on
// both the thread and process backends, depth clamps and the interactive
// reserve, pool-miss fallback to the cold path, and the invocation edge
// cases the pool introduces (cancel racing completion on a pooled sandbox,
// deadline expiring while the task is still queued, priority bypass).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/thread.h"
#include "src/func/registry.h"
#include "src/runtime/invocation.h"
#include "src/runtime/memory_context.h"
#include "src/runtime/platform.h"
#include "src/runtime/sandbox_pool.h"

namespace {

using dandelion::IsolationBackend;
using dandelion::PriorityClass;
using dandelion::SandboxPool;
using dandelion::SandboxPoolStats;
using dandelion::WarmSandbox;
using dbase::kMicrosPerMilli;
using dbase::kMicrosPerSecond;
using dbase::Micros;

// --------------------------------------------------- PrewarmPolicy units

dpolicy::PrewarmOptions TestPrewarmOptions() {
  dpolicy::PrewarmOptions options;
  options.ewma_alpha = 0.5;
  options.provision_window_us = 100 * kMicrosPerMilli;
  options.headroom = 1.0;
  options.scale_to_zero_after_us = 1 * kMicrosPerSecond;
  options.max_depth = 16;
  return options;
}

TEST(PrewarmPolicyTest, FirstTickPrimesWithoutRate) {
  dpolicy::PrewarmPolicy policy(TestPrewarmOptions());
  // No arrivals yet: nothing to keep warm.
  auto decision = policy.Decide({.now_us = 0, .arrivals = 0});
  EXPECT_EQ(decision.target_depth, 0);
  policy.Reset();
  // Arrivals already seen at priming: keep one warm while the EWMA forms.
  decision = policy.Decide({.now_us = 0, .arrivals = 3});
  EXPECT_EQ(decision.target_depth, 1);
  EXPECT_STREQ(decision.reason, "warming");
}

TEST(PrewarmPolicyTest, EwmaWarmsUpTowardArrivalRate) {
  dpolicy::PrewarmPolicy policy(TestPrewarmOptions());
  // 100 arrivals per 100 ms tick = 1000/s; window 100 ms, headroom 1.0
  // → steady-state target 100 (clamped to max_depth 16).
  Micros now = 0;
  uint64_t arrivals = 0;
  policy.Decide({.now_us = now, .arrivals = arrivals});
  int last_target = 0;
  for (int tick = 0; tick < 10; ++tick) {
    now += 100 * kMicrosPerMilli;
    arrivals += 100;
    const auto decision = policy.Decide({.now_us = now, .arrivals = arrivals});
    EXPECT_GE(decision.target_depth, last_target);  // Monotone warm-up.
    last_target = decision.target_depth;
  }
  EXPECT_EQ(last_target, 16);  // Clamped at options.max_depth.
  const auto steady = policy.Decide({.now_us = now + 100 * kMicrosPerMilli,
                                     .arrivals = arrivals + 100});
  EXPECT_NEAR(steady.rate_per_sec, 1000.0, 100.0);
  EXPECT_STREQ(steady.reason, "track");
}

TEST(PrewarmPolicyTest, ScalesToZeroAfterIdleAndRestartsCleanly) {
  dpolicy::PrewarmPolicy policy(TestPrewarmOptions());
  Micros now = 0;
  policy.Decide({.now_us = now, .arrivals = 10});
  now += 100 * kMicrosPerMilli;
  auto decision = policy.Decide({.now_us = now, .arrivals = 60});
  EXPECT_GE(decision.target_depth, 1);

  // Idle past scale_to_zero_after_us: depth 0 and the rate estimate resets.
  now += 2 * kMicrosPerSecond;
  decision = policy.Decide({.now_us = now, .arrivals = 60});
  EXPECT_EQ(decision.target_depth, 0);
  EXPECT_STREQ(decision.reason, "scale-to-zero");
  EXPECT_EQ(decision.rate_per_sec, 0.0);

  // A later burst re-warms from scratch instead of inheriting the pre-idle
  // estimate: the first post-burst decision keeps at least one warm.
  now += 100 * kMicrosPerMilli;
  decision = policy.Decide({.now_us = now, .arrivals = 70});
  EXPECT_GE(decision.target_depth, 1);
  EXPECT_LE(decision.target_depth, 16);
}

TEST(PrewarmPolicyTest, MinDepthFloorsTheTarget) {
  dpolicy::PrewarmOptions options = TestPrewarmOptions();
  options.min_depth = 2;
  dpolicy::PrewarmPolicy policy(options);
  const auto decision = policy.Decide({.now_us = 0, .arrivals = 0});
  EXPECT_EQ(decision.target_depth, 2);
}

// ------------------------------------------------- SandboxPool lifecycle

dfunc::FunctionSpec EchoSpec(const char* name = "echo") {
  dfunc::FunctionSpec spec;
  spec.name = name;
  spec.context_bytes = 1 << 20;
  spec.body = [](dfunc::FunctionCtx& ctx) {
    auto input = ctx.SingleInput("in");
    ctx.EmitOutput("out", input.ok() ? *input : "none");
    return dbase::OkStatus();
  };
  return spec;
}

SandboxPool::Config PoolConfig(IsolationBackend backend) {
  SandboxPool::Config config;
  config.backend = backend;
  config.max_depth_per_function = 4;
  config.max_total = 8;
  config.prewarm = TestPrewarmOptions();
  return config;
}

// Acquire on an empty pool is a miss; after a Tick observed arrivals the
// shelf fills; a hit executes with pool_hit timings and Release re-shelves.
void RunLifecycle(IsolationBackend backend) {
  SandboxPool pool(PoolConfig(backend), nullptr);
  const dfunc::FunctionSpec spec = EchoSpec();

  EXPECT_EQ(pool.Acquire(spec, PriorityClass::kInteractive), nullptr);  // Cold miss.
  pool.Tick(0);  // Primes the policy with the arrival above.
  pool.Tick(100 * kMicrosPerMilli);
  SandboxPoolStats stats = pool.Stats();
  ASSERT_GE(stats.shelved, 1) << "policy tick should have pre-warmed the shelf";
  EXPECT_GE(stats.prewarm_fills, 1u);

  auto warm = pool.Acquire(spec, PriorityClass::kInteractive);
  ASSERT_NE(warm, nullptr);
  ASSERT_TRUE(warm->context()
                  ->StoreInputSets({dfunc::DataSet{"in", {dfunc::DataItem{"", "ping"}}}})
                  .ok());
  const dandelion::ExecOutcome outcome = warm->Execute(dandelion::SandboxOptions{});
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.message();
  ASSERT_EQ(outcome.outputs.size(), 1u);
  EXPECT_EQ(outcome.outputs[0].items[0].data, "ping");
  EXPECT_TRUE(outcome.timings.pool_hit);
  EXPECT_EQ(outcome.timings.load_us, 0);
  // A pool hit's setup is one pipe write (process) or nothing (thread) —
  // far below the cold fork / modelled setup cost.
  EXPECT_LT(outcome.timings.setup_us, 5 * kMicrosPerMilli);

  pool.Release(std::move(warm));
  stats = pool.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.leased, 0);
  EXPECT_GE(stats.recycled, 1u);

  // The recycled sandbox is scrubbed: its context reads as zeros (header
  // magic gone), indistinguishable from a fresh mapping.
  auto again = pool.Acquire(spec, PriorityClass::kInteractive);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->context()->ReadHeader().magic, 0u);
  EXPECT_EQ(again->context()->touched(), 0u);

  // And it still executes correctly after the scrub.
  ASSERT_TRUE(again->context()
                  ->StoreInputSets({dfunc::DataSet{"in", {dfunc::DataItem{"", "pong"}}}})
                  .ok());
  const dandelion::ExecOutcome second = again->Execute(dandelion::SandboxOptions{});
  ASSERT_TRUE(second.status.ok()) << second.status.message();
  EXPECT_EQ(second.outputs[0].items[0].data, "pong");
  pool.Release(std::move(again));
  pool.Shutdown();
}

TEST(SandboxPoolTest, LifecycleThreadBackend) { RunLifecycle(IsolationBackend::kThread); }

TEST(SandboxPoolTest, LifecycleProcessBackend) { RunLifecycle(IsolationBackend::kProcess); }

// Large extents on a MAP_SHARED (process-backend) context take the
// madvise scrub path, where MADV_DONTNEED would silently leave the bytes
// alive in the backing shmem object — the scrub must hole-punch instead.
TEST(SandboxPoolTest, SharedContextScrubZeroesLargeExtents) {
  auto context_result =
      dandelion::MemoryContext::Create(1 << 20, nullptr, /*shared=*/true);
  ASSERT_TRUE(context_result.ok());
  std::unique_ptr<dandelion::MemoryContext> context = std::move(context_result).value();
  const std::string payload(128 * 1024, 'S');  // > ContextPool::kZeroExtentBytes.
  ASSERT_TRUE(context->WriteAt(0, payload).ok());
  context->ScrubForReuse(payload.size());
  auto view = context->ReadAt(0, payload.size());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->find_first_not_of('\0'), std::string_view::npos)
      << "shared context still holds pre-scrub bytes";
  EXPECT_EQ(context->touched(), 0u);
}

// End-to-end on the process backend: a pooled invocation whose inputs and
// outputs exceed the small-extent memset regime must leave no residue in
// the context the next lease sees.
TEST(SandboxPoolTest, ProcessBackendScrubsLargePayloadAcrossLeases) {
  SandboxPool pool(PoolConfig(IsolationBackend::kProcess), nullptr);
  const dfunc::FunctionSpec spec = EchoSpec();
  pool.Acquire(spec, PriorityClass::kInteractive);  // Prime the arrival EWMA.
  pool.Tick(0);
  pool.Tick(100 * kMicrosPerMilli);
  ASSERT_GE(pool.Stats().shelved, 1);

  auto warm = pool.Acquire(spec, PriorityClass::kInteractive);
  ASSERT_NE(warm, nullptr);
  const std::string secret(128 * 1024, 'S');
  ASSERT_TRUE(warm->context()
                  ->StoreInputSets({dfunc::DataSet{"in", {dfunc::DataItem{"", secret}}}})
                  .ok());
  const dandelion::ExecOutcome outcome = warm->Execute(dandelion::SandboxOptions{});
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.message();
  ASSERT_EQ(outcome.outputs[0].items[0].data, secret);
  pool.Release(std::move(warm));

  auto again = pool.Acquire(spec, PriorityClass::kInteractive);
  ASSERT_NE(again, nullptr);
  // Scan well past the previous invocation's extent: everything must read
  // as zeros — no state crosses instances.
  auto view = again->context()->ReadAt(0, 256 * 1024);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->find_first_not_of('\0'), std::string_view::npos)
      << "previous invocation's payload leaked into the next lease";
  pool.Release(std::move(again));
  pool.Shutdown();
}

TEST(SandboxPoolTest, DepthClampsPerFunctionAndGlobally) {
  SandboxPool::Config config = PoolConfig(IsolationBackend::kThread);
  config.max_depth_per_function = 2;
  config.max_total = 3;
  // A policy that always wants a deep shelf, to push against the clamps.
  config.policy_factory = [] {
    dpolicy::PrewarmOptions options;
    options.min_depth = 100;
    options.max_depth = 100;
    return std::make_unique<dpolicy::PrewarmPolicy>(options);
  };
  SandboxPool pool(config, nullptr);

  const dfunc::FunctionSpec a = EchoSpec("fn_a");
  const dfunc::FunctionSpec b = EchoSpec("fn_b");
  pool.Acquire(a, PriorityClass::kInteractive);
  pool.Acquire(b, PriorityClass::kInteractive);
  pool.Tick(0);
  pool.Tick(100 * kMicrosPerMilli);
  const SandboxPoolStats stats = pool.Stats();
  // Per-function clamp (2 each) and the global cap (3) both hold.
  EXPECT_LE(stats.shelved, 3);
  EXPECT_GE(stats.shelved, 2);
  pool.Shutdown();
  EXPECT_EQ(pool.Stats().shelved, 0);
}

TEST(SandboxPoolTest, ScaleToZeroRetiresShelvedSandboxes) {
  SandboxPool pool(PoolConfig(IsolationBackend::kThread), nullptr);
  const dfunc::FunctionSpec spec = EchoSpec();
  pool.Acquire(spec, PriorityClass::kInteractive);
  pool.Tick(0);
  pool.Tick(100 * kMicrosPerMilli);
  ASSERT_GE(pool.Stats().shelved, 1);
  // Idle past scale_to_zero_after_us: the next tick retires the shelf.
  pool.Tick(100 * kMicrosPerMilli + 2 * kMicrosPerSecond);
  const SandboxPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.shelved, 0);
  EXPECT_GE(stats.retired, 1u);
}

TEST(SandboxPoolTest, InteractiveReserveBypassesBatch) {
  SandboxPool::Config config = PoolConfig(IsolationBackend::kThread);
  config.interactive_reserve = 1;
  SandboxPool pool(config, nullptr);
  const dfunc::FunctionSpec spec = EchoSpec();
  pool.Acquire(spec, PriorityClass::kInteractive);
  pool.Tick(0);
  // Drive the EWMA until at least two sandboxes are shelved.
  Micros now = 0;
  for (int i = 0; i < 6 && pool.Stats().shelved < 2; ++i) {
    for (int j = 0; j < 20; ++j) {
      auto warm = pool.Acquire(spec, PriorityClass::kInteractive);
      if (warm != nullptr) {
        pool.Release(std::move(warm));
      }
    }
    now += 100 * kMicrosPerMilli;
    pool.Tick(now);
  }
  ASSERT_GE(pool.Stats().shelved, 2);

  // Batch may take warm sandboxes down to the reserve, not past it.
  while (pool.Stats().shelved > config.interactive_reserve) {
    ASSERT_NE(pool.Acquire(spec, PriorityClass::kBatch), nullptr);
  }
  const uint64_t bypassed_before = pool.Stats().bypassed;
  EXPECT_EQ(pool.Acquire(spec, PriorityClass::kBatch), nullptr);
  EXPECT_EQ(pool.Stats().bypassed, bypassed_before + 1);
  // The reserved warm sandbox is still there for an interactive request.
  EXPECT_NE(pool.Acquire(spec, PriorityClass::kInteractive), nullptr);
}

// -------------------------------------------- Platform integration paths

dandelion::PlatformConfig PooledPlatformConfig() {
  dandelion::PlatformConfig config;
  config.num_workers = 3;
  config.backend = IsolationBackend::kThread;
  config.sleep_for_modeled_latency = false;
  config.enable_sandbox_pool = true;
  config.sandbox_pool.prewarm = TestPrewarmOptions();
  return config;
}

constexpr const char* kSingleDsl = R"(
composition Run(in) => out {
  echo(in = all in) => (out = out);
}
)";

dfunc::DataSetList OneInput(const char* data) {
  return {dfunc::DataSet{"in", {dfunc::DataItem{"", data}}}};
}

TEST(SandboxPoolPlatformTest, PoolMissFallsBackToColdCreate) {
  dandelion::Platform platform(PooledPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction(EchoSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  // No tick has run, the shelf is empty: the invocation must still succeed
  // via the cold path and report zero pool hits.
  dandelion::InvocationRequest request;
  request.composition = "Run";
  request.args = OneInput("cold");
  auto result = platform.Invoke(std::move(request));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ((*result)[0].items[0].data, "cold");

  const SandboxPoolStats stats = platform.sandbox_pool()->Stats();
  EXPECT_GE(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(SandboxPoolPlatformTest, WarmHitIsReportedOnTheInvocation) {
  dandelion::Platform platform(PooledPlatformConfig());
  ASSERT_TRUE(platform.RegisterFunction(EchoSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  // Warm the shelf by hand (tests drive Tick directly for determinism).
  SandboxPool* pool = platform.sandbox_pool();
  {
    dandelion::InvocationRequest request;
    request.composition = "Run";
    request.args = OneInput("prime");
    ASSERT_TRUE(platform.Invoke(std::move(request)).ok());
  }
  pool->Tick(0);
  pool->Tick(100 * kMicrosPerMilli);
  ASSERT_GE(pool->Stats().shelved, 1);

  dandelion::InvocationRequest request;
  request.composition = "Run";
  request.args = OneInput("warm");
  dbase::Latch latch(1);
  dbase::Result<dfunc::DataSetList> result = dfunc::DataSetList{};
  auto handle = platform.Submit(std::move(request),
                                [&](dbase::Result<dfunc::DataSetList> r) {
                                  result = std::move(r);
                                  latch.CountDown();
                                });
  ASSERT_TRUE(latch.WaitFor(10 * kMicrosPerSecond));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ((*result)[0].items[0].data, "warm");

  const dandelion::InvocationReport report = handle.Report();
  EXPECT_EQ(report.instances_pool_hits, 1u);
  EXPECT_EQ(pool->Stats().hits, 1u);
  EXPECT_EQ(pool->Stats().leased, 0);
}

TEST(SandboxPoolPlatformTest, CancelRacesCompletionOnPooledSandbox) {
  dandelion::PlatformConfig config = PooledPlatformConfig();
  dandelion::Platform platform(config);
  dfunc::FunctionSpec spec;
  spec.name = "echo";  // Keep the composition DSL unchanged.
  spec.context_bytes = 1 << 20;
  spec.body = [](dfunc::FunctionCtx& ctx) {
    // Spin until cancelled or ~50 ms elapse, polling the kill switches the
    // way long-running guest code is expected to.
    dbase::Stopwatch watch;
    while (!ctx.cancelled() && watch.ElapsedMicros() < 50 * kMicrosPerMilli) {
      std::this_thread::yield();
    }
    ctx.EmitOutput("out", "done");
    return ctx.cancelled() ? dbase::Cancelled("stopped") : dbase::OkStatus();
  };
  ASSERT_TRUE(platform.RegisterFunction(std::move(spec)).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  SandboxPool* pool = platform.sandbox_pool();
  {
    dandelion::InvocationRequest request;
    request.composition = "Run";
    request.args = OneInput("prime");
    ASSERT_TRUE(platform.Invoke(std::move(request)).ok());
  }
  pool->Tick(0);
  pool->Tick(100 * kMicrosPerMilli);
  ASSERT_GE(pool->Stats().shelved, 1);

  // Race a cancel against the pooled execution, at staggered offsets so
  // some cancels land mid-execution and some land after completion.
  for (int i = 0; i < 8; ++i) {
    dandelion::InvocationRequest request;
    request.composition = "Run";
    request.args = OneInput("racy");
    dbase::Latch latch(1);
    std::atomic<bool> ok{false};
    auto handle = platform.Submit(std::move(request),
                                  [&](dbase::Result<dfunc::DataSetList> r) {
                                    ok.store(r.ok());
                                    latch.CountDown();
                                  });
    std::this_thread::sleep_for(std::chrono::microseconds(i * 10000));
    handle.Cancel();
    ASSERT_TRUE(latch.WaitFor(10 * kMicrosPerSecond));
    if (!ok.load()) {
      EXPECT_EQ(handle.Report().phase, dandelion::InvocationPhase::kCancelled);
    }
  }
  // Whatever the races decided, every lease came back.
  EXPECT_EQ(pool->Stats().leased, 0);
}

TEST(SandboxPoolPlatformTest, DeadlineWhileQueuedReleasesTheWarmSandbox) {
  dandelion::PlatformConfig config = PooledPlatformConfig();
  config.num_workers = 2;  // One compute worker (one comm minimum).
  dandelion::Platform platform(config);
  dfunc::FunctionSpec blocker;
  blocker.name = "echo";
  blocker.context_bytes = 1 << 20;
  blocker.body = [](dfunc::FunctionCtx& ctx) {
    auto input = ctx.SingleInput("in");
    if (input.ok() && *input == "block") {
      dbase::Stopwatch watch;
      while (!ctx.cancelled() && watch.ElapsedMicros() < 200 * kMicrosPerMilli) {
        std::this_thread::yield();
      }
    }
    ctx.EmitOutput("out", "done");
    return dbase::OkStatus();
  };
  ASSERT_TRUE(platform.RegisterFunction(std::move(blocker)).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  SandboxPool* pool = platform.sandbox_pool();
  {
    dandelion::InvocationRequest request;
    request.composition = "Run";
    request.args = OneInput("prime");
    ASSERT_TRUE(platform.Invoke(std::move(request)).ok());
  }
  pool->Tick(0);
  pool->Tick(100 * kMicrosPerMilli);
  ASSERT_GE(pool->Stats().shelved, 1);

  // Occupy the single compute worker, then submit a pooled invocation with
  // a deadline far shorter than the blocker: its warm sandbox is acquired
  // at dispatch, parks in the queue, dies there, and must be released back
  // (never executed) rather than leaked.
  dbase::Latch blocker_done(1);
  dandelion::InvocationRequest block_request;
  block_request.composition = "Run";
  block_request.args = OneInput("block");
  platform.Submit(std::move(block_request),
                  [&](dbase::Result<dfunc::DataSetList>) { blocker_done.CountDown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  dandelion::InvocationRequest doomed;
  doomed.composition = "Run";
  doomed.args = OneInput("fast");
  doomed.deadline_us = dandelion::InvocationRequest::DeadlineIn(20 * kMicrosPerMilli);
  dbase::Latch doomed_done(1);
  dbase::Result<dfunc::DataSetList> doomed_result = dfunc::DataSetList{};
  auto handle = platform.Submit(std::move(doomed),
                                [&](dbase::Result<dfunc::DataSetList> r) {
                                  doomed_result = std::move(r);
                                  doomed_done.CountDown();
                                });
  ASSERT_TRUE(doomed_done.WaitFor(10 * kMicrosPerSecond));
  ASSERT_TRUE(blocker_done.WaitFor(10 * kMicrosPerSecond));
  EXPECT_FALSE(doomed_result.ok());
  EXPECT_EQ(doomed_result.status().code(), dbase::StatusCode::kDeadlineExceeded);
  const dandelion::InvocationReport report = handle.Report();
  EXPECT_EQ(report.instances_pool_hits, 0u);  // It never executed.
  EXPECT_EQ(pool->Stats().leased, 0);         // The lease came back.
}

TEST(SandboxPoolPlatformTest, ConcurrentAcquireSurvivesRacingRoleShifts) {
  dandelion::PlatformConfig config = PooledPlatformConfig();
  config.num_workers = 4;
  dandelion::Platform platform(config);
  ASSERT_TRUE(platform.RegisterFunction(EchoSpec()).ok());
  ASSERT_TRUE(platform.RegisterCompositionDsl(kSingleDsl).ok());

  SandboxPool* pool = platform.sandbox_pool();
  constexpr int kInvocations = 120;
  std::atomic<bool> stop{false};
  // One thread hammers role shifts (the elasticity actuator), another
  // drives pool ticks, while invocations flow — the pool must stay
  // consistent under the full concurrency of the runtime.
  std::thread shifter([&] {
    int direction = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      platform.workers().ShiftWorkers(direction);
      direction = -direction;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  std::thread ticker([&] {
    Micros now = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      pool->Tick(now);
      now += 5 * kMicrosPerMilli;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  dbase::Latch latch(kInvocations);
  std::atomic<int> failures{0};
  for (int i = 0; i < kInvocations; ++i) {
    dandelion::InvocationRequest request;
    request.composition = "Run";
    request.args = OneInput("x");
    request.priority = i % 2 == 0 ? PriorityClass::kInteractive : PriorityClass::kBatch;
    platform.Submit(std::move(request), [&](dbase::Result<dfunc::DataSetList> r) {
      if (!r.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      latch.CountDown();
    });
    if (i % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(latch.WaitFor(30 * kMicrosPerSecond));
  stop.store(true);
  shifter.join();
  ticker.join();

  EXPECT_EQ(failures.load(), 0);
  const SandboxPoolStats stats = pool->Stats();
  EXPECT_EQ(stats.leased, 0);
  EXPECT_EQ(stats.arrivals, static_cast<uint64_t>(kInvocations));
  EXPECT_EQ(stats.hits + stats.misses, stats.arrivals);  // Every acquire resolved.
}

}  // namespace
