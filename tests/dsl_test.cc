// Tests for the composition DSL: lexer, parser (good and bad inputs),
// format round-trips, and graph validation/lowering.
#include <gtest/gtest.h>

#include "src/dsl/graph.h"
#include "src/dsl/lexer.h"
#include "src/dsl/parser.h"

namespace ddsl {
namespace {

constexpr const char* kRenderLogs = R"(
// The paper's Listing 2.
composition RenderLogs(AccessToken) => HTMLOutput {
  Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
  HTTP(Request = each AuthRequest) => (AuthResponse = Response);
  FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
  HTTP(Request = each LogRequests) => (LogResponses = Response);
  Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
}
)";

// ------------------------------------------------------------------- Lexer

TEST(LexerTest, TokenizesPunctuationAndKeywords) {
  auto tokens = Tokenize("composition F(a) => b { all each key optional , ; = => ( ) }");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) {
    kinds.push_back(t.kind);
  }
  EXPECT_EQ(kinds.front(), TokenKind::kKwComposition);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kKwOptional), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kArrow), kinds.end());
}

TEST(LexerTest, TracksLineAndColumn) {
  auto tokens = Tokenize("a\n  bb");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[0].column, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a // comment\n# another\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // a, b, EOF.
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("a $ b").ok());
}

TEST(LexerTest, IdentifiersWithDigitsAndUnderscores) {
  auto tokens = Tokenize("_x9 y_2z");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "_x9");
  EXPECT_EQ((*tokens)[1].text, "y_2z");
}

// ------------------------------------------------------------------ Parser

TEST(ParserTest, ParsesListing2) {
  auto ast = ParseSingleComposition(kRenderLogs);
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->name, "RenderLogs");
  ASSERT_EQ(ast->params.size(), 1u);
  EXPECT_EQ(ast->params[0], "AccessToken");
  ASSERT_EQ(ast->results.size(), 1u);
  EXPECT_EQ(ast->results[0], "HTMLOutput");
  ASSERT_EQ(ast->nodes.size(), 5u);
  EXPECT_EQ(ast->nodes[1].callee, "HTTP");
  EXPECT_EQ(ast->nodes[1].inputs[0].dist, Distribution::kEach);
  EXPECT_EQ(ast->nodes[2].inputs[0].dist, Distribution::kAll);
  EXPECT_EQ(ast->nodes[4].outputs[0].alias, "HTMLOutput");
  EXPECT_EQ(ast->nodes[4].outputs[0].set_name, "HTMLOutput");
}

TEST(ParserTest, MultipleCompositionsInOneFile) {
  auto asts = ParseCompositions(R"(
composition A(x) => y { F(i = all x) => (y = o); }
composition B(x) => y { G(i = key x) => (y = o); }
)");
  ASSERT_TRUE(asts.ok());
  ASSERT_EQ(asts->size(), 2u);
  EXPECT_EQ((*asts)[0].name, "A");
  EXPECT_EQ((*asts)[1].name, "B");
  EXPECT_EQ((*asts)[1].nodes[0].inputs[0].dist, Distribution::kKey);
}

TEST(ParserTest, OptionalKeyword) {
  auto ast = ParseSingleComposition(
      "composition C(x, e) => y { F(a = all x, err = all optional e) => (y = o); }");
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(ast->nodes[0].inputs[0].optional);
  EXPECT_TRUE(ast->nodes[0].inputs[1].optional);
}

TEST(ParserTest, MultipleOutputs) {
  auto ast = ParseSingleComposition(
      "composition C(x) => y, z { F(a = all x) => (y = oy, z = oz); }");
  ASSERT_TRUE(ast.ok());
  ASSERT_EQ(ast->nodes[0].outputs.size(), 2u);
  EXPECT_EQ(ast->results, (std::vector<std::string>{"y", "z"}));
}

struct BadDslCase {
  const char* name;
  const char* source;
};

class ParserErrorTest : public ::testing::TestWithParam<BadDslCase> {};

TEST_P(ParserErrorTest, Rejects) {
  EXPECT_FALSE(ParseSingleComposition(GetParam().source).ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserErrorTest,
    ::testing::Values(
        BadDslCase{"empty", ""},
        BadDslCase{"no_body", "composition C(x) => y"},
        BadDslCase{"empty_body", "composition C(x) => y { }"},
        BadDslCase{"missing_arrow", "composition C(x) y { F(a = all x) => (y = o); }"},
        BadDslCase{"missing_semicolon", "composition C(x) => y { F(a = all x) => (y = o) }"},
        BadDslCase{"bad_dist", "composition C(x) => y { F(a = some x) => (y = o); }"},
        BadDslCase{"no_dist", "composition C(x) => y { F(a = x) => (y = o); }"},
        BadDslCase{"unterminated", "composition C(x) => y { F(a = all x) => (y = o);"},
        BadDslCase{"keyword_as_name", "composition all(x) => y { F(a = all x) => (y = o); }"},
        BadDslCase{"missing_results", "composition C(x) => { F(a = all x) => (y = o); }"}),
    [](const ::testing::TestParamInfo<BadDslCase>& param_info) { return param_info.param.name; });

TEST(FormatTest, RoundTripThroughParser) {
  auto ast = ParseSingleComposition(kRenderLogs);
  ASSERT_TRUE(ast.ok());
  const std::string formatted = FormatComposition(*ast);
  auto reparsed = ParseSingleComposition(formatted);
  ASSERT_TRUE(reparsed.ok()) << formatted;
  EXPECT_EQ(FormatComposition(*reparsed), formatted);
}

TEST(FormatTest, OptionalRendered) {
  auto ast = ParseSingleComposition(
      "composition C(x) => y { F(a = each optional x) => (y = o); }");
  ASSERT_TRUE(ast.ok());
  EXPECT_NE(FormatComposition(*ast).find("each optional x"), std::string::npos);
}

// ------------------------------------------------------------------- Graph

TEST(GraphTest, LowersListing2) {
  auto ast = ParseSingleComposition(kRenderLogs);
  ASSERT_TRUE(ast.ok());
  auto graph = CompositionGraph::FromAst(*ast);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->name(), "RenderLogs");
  EXPECT_EQ(graph->nodes().size(), 5u);
  EXPECT_EQ(graph->topo_order().size(), 5u);

  auto producer = graph->ProducerOf("AuthResponse");
  ASSERT_TRUE(producer.ok());
  EXPECT_EQ(producer->kind, ValueProducer::Kind::kNode);
  EXPECT_EQ(producer->index, 1u);

  auto param = graph->ProducerOf("AccessToken");
  ASSERT_TRUE(param.ok());
  EXPECT_EQ(param->kind, ValueProducer::Kind::kParam);

  EXPECT_FALSE(graph->ProducerOf("Nonexistent").ok());
}

TEST(GraphTest, ConsumerCounts) {
  auto ast = ParseSingleComposition(kRenderLogs);
  auto graph = CompositionGraph::FromAst(*ast);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->ConsumerCount("AuthRequest"), 1);
  EXPECT_EQ(graph->ConsumerCount("HTMLOutput"), 1);  // The client.
  EXPECT_EQ(graph->ConsumerCount("unknown"), 0);
}

GraphNode MakeNode(std::string callee, std::vector<GraphInput> inputs,
                   std::vector<GraphOutput> outputs) {
  GraphNode node;
  node.callee = std::move(callee);
  node.inputs = std::move(inputs);
  node.outputs = std::move(outputs);
  return node;
}

TEST(GraphTest, RejectsUndefinedValue) {
  auto graph = CompositionGraph::Create(
      "C", {"x"}, {"y"},
      {MakeNode("F", {{"a", Distribution::kAll, false, "ghost"}}, {{"y", "o"}})});
  EXPECT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("undefined value"), std::string::npos);
}

TEST(GraphTest, RejectsDuplicateAlias) {
  auto graph = CompositionGraph::Create(
      "C", {"x"}, {"y"},
      {MakeNode("F", {{"a", Distribution::kAll, false, "x"}}, {{"y", "o"}}),
       MakeNode("G", {{"a", Distribution::kAll, false, "x"}}, {{"y", "o"}})});
  EXPECT_FALSE(graph.ok());
}

TEST(GraphTest, RejectsAliasShadowingParam) {
  auto graph = CompositionGraph::Create(
      "C", {"x"}, {"x"},
      {MakeNode("F", {{"a", Distribution::kAll, false, "x"}}, {{"x", "o"}})});
  EXPECT_FALSE(graph.ok());
}

TEST(GraphTest, RejectsUnproducedResult) {
  auto graph = CompositionGraph::Create(
      "C", {"x"}, {"nope"},
      {MakeNode("F", {{"a", Distribution::kAll, false, "x"}}, {{"y", "o"}})});
  EXPECT_FALSE(graph.ok());
}

TEST(GraphTest, RejectsSelfLoop) {
  auto graph = CompositionGraph::Create(
      "C", {"x"}, {"y"},
      {MakeNode("F", {{"a", Distribution::kAll, false, "y"}}, {{"y", "o"}})});
  EXPECT_FALSE(graph.ok());
}

TEST(GraphTest, RejectsCycle) {
  auto graph = CompositionGraph::Create(
      "C", {"x"}, {"u"},
      {MakeNode("F", {{"a", Distribution::kAll, false, "v"}}, {{"u", "o"}}),
       MakeNode("G", {{"a", Distribution::kAll, false, "u"}}, {{"v", "o"}})});
  EXPECT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("cycle"), std::string::npos);
}

TEST(GraphTest, RejectsTwoFanOutBindings) {
  auto graph = CompositionGraph::Create(
      "C", {"x", "y"}, {"z"},
      {MakeNode("F",
                {{"a", Distribution::kEach, false, "x"}, {"b", Distribution::kKey, false, "y"}},
                {{"z", "o"}})});
  EXPECT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("at most one input"), std::string::npos);
}

TEST(GraphTest, RejectsDuplicateInputSet) {
  auto graph = CompositionGraph::Create(
      "C", {"x"}, {"z"},
      {MakeNode("F",
                {{"a", Distribution::kAll, false, "x"}, {"a", Distribution::kAll, false, "x"}},
                {{"z", "o"}})});
  EXPECT_FALSE(graph.ok());
}

TEST(GraphTest, RejectsNoNodesOrResults) {
  EXPECT_FALSE(CompositionGraph::Create("C", {"x"}, {"y"}, {}).ok());
  EXPECT_FALSE(CompositionGraph::Create(
                   "C", {"x"}, {},
                   {MakeNode("F", {{"a", Distribution::kAll, false, "x"}}, {{"y", "o"}})})
                   .ok());
}

TEST(GraphTest, TopoOrderRespectsDependencies) {
  // Build out of order: node 0 consumes node 1's output.
  auto graph = CompositionGraph::Create(
      "C", {"x"}, {"z"},
      {MakeNode("Late", {{"a", Distribution::kAll, false, "mid"}}, {{"z", "o"}}),
       MakeNode("Early", {{"a", Distribution::kAll, false, "x"}}, {{"mid", "o"}})});
  ASSERT_TRUE(graph.ok());
  const auto& order = graph->topo_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST(GraphTest, DebugStringMentionsNodes) {
  auto ast = ParseSingleComposition(kRenderLogs);
  auto graph = CompositionGraph::FromAst(*ast);
  ASSERT_TRUE(graph.ok());
  EXPECT_NE(graph->DebugString().find("FanOut"), std::string::npos);
}

}  // namespace
}  // namespace ddsl
