// Tests for dlibc — the stdio-like, syscall-free file interface compute
// functions use (§4.1).
#include <gtest/gtest.h>

#include <cstring>

#include "src/vfs/dlibc.h"
#include "src/vfs/memfs.h"

namespace dvfs {
namespace {

class DlibcTest : public ::testing::Test {
 protected:
  MemFs fs_;
};

TEST_F(DlibcTest, OpenModes) {
  EXPECT_EQ(DOpen(fs_, "/missing", "r"), nullptr);   // r requires existence.
  EXPECT_EQ(DOpen(fs_, "/missing", "r+"), nullptr);  // r+ too.
  EXPECT_NE(DOpen(fs_, "/new", "w"), nullptr);       // w creates.
  EXPECT_TRUE(fs_.Exists("/new"));
  EXPECT_NE(DOpen(fs_, "/appended", "a"), nullptr);  // a creates.
  EXPECT_EQ(DOpen(fs_, "/x", "q"), nullptr);         // Unknown mode.
  EXPECT_EQ(DOpen(fs_, "/x", nullptr), nullptr);
  EXPECT_EQ(DOpen(fs_, "/no/parent/file", "w"), nullptr);  // Missing dir.
}

TEST_F(DlibcTest, WriteThenRead) {
  {
    auto file = DOpen(fs_, "/data", "w");
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(file->Write("hello ", 1, 6), 6u);
    EXPECT_EQ(file->Puts("world"), 5);
    EXPECT_TRUE(file->Flush().ok());
  }
  auto file = DOpen(fs_, "/data", "r");
  ASSERT_NE(file, nullptr);
  char buffer[32] = {};
  EXPECT_EQ(file->Read(buffer, 1, sizeof(buffer)), 11u);
  EXPECT_STREQ(buffer, "hello world");
  EXPECT_TRUE(file->AtEof());
}

TEST_F(DlibcTest, DestructorFlushes) {
  {
    auto file = DOpen(fs_, "/auto", "w");
    ASSERT_NE(file, nullptr);
    file->Puts("flushed by dtor");
    // No explicit Flush.
  }
  EXPECT_EQ(fs_.ReadFile("/auto").value(), "flushed by dtor");
}

TEST_F(DlibcTest, TruncateVsAppend) {
  ASSERT_TRUE(DWriteFile(fs_, "/f", "original").ok());
  {
    auto file = DOpen(fs_, "/f", "a");
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(file->Tell(), 8);  // Positioned at end.
    file->Puts("+more");
  }
  EXPECT_EQ(fs_.ReadFile("/f").value(), "original+more");
  {
    auto file = DOpen(fs_, "/f", "w");
    ASSERT_NE(file, nullptr);
    file->Puts("new");
  }
  EXPECT_EQ(fs_.ReadFile("/f").value(), "new");
}

TEST_F(DlibcTest, ReadOnlyStreamsRejectWrites) {
  ASSERT_TRUE(DWriteFile(fs_, "/ro", "data").ok());
  auto file = DOpen(fs_, "/ro", "r");
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->Write("x", 1, 1), 0u);
  EXPECT_EQ(file->PutChar('x'), -1);
  EXPECT_EQ(file->Puts("x"), -1);
}

TEST_F(DlibcTest, SeekAndTell) {
  ASSERT_TRUE(DWriteFile(fs_, "/s", "0123456789").ok());
  auto file = DOpen(fs_, "/s", "r");
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->Seek(4, DSeekWhence::kSet), 0);
  EXPECT_EQ(file->GetChar(), '4');
  EXPECT_EQ(file->Seek(2, DSeekWhence::kCur), 0);
  EXPECT_EQ(file->GetChar(), '7');
  EXPECT_EQ(file->Seek(-1, DSeekWhence::kEnd), 0);
  EXPECT_EQ(file->GetChar(), '9');
  EXPECT_EQ(file->Seek(-100, DSeekWhence::kSet), -1);   // Negative target.
  EXPECT_EQ(file->Seek(100, DSeekWhence::kSet), -1);    // Past EOF, read-only.
}

TEST_F(DlibcTest, SeekPastEndOnWritableZeroFills) {
  auto file = DOpen(fs_, "/sparse", "w");
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->Seek(4, DSeekWhence::kSet), 0);
  file->PutChar('X');
  ASSERT_TRUE(file->Flush().ok());
  const std::string data = fs_.ReadFile("/sparse").value();
  ASSERT_EQ(data.size(), 5u);
  EXPECT_EQ(data[0], '\0');
  EXPECT_EQ(data[4], 'X');
}

TEST_F(DlibcTest, GetsReadsLines) {
  ASSERT_TRUE(DWriteFile(fs_, "/lines", "first\nsecond\nlast").ok());
  auto file = DOpen(fs_, "/lines", "r");
  ASSERT_NE(file, nullptr);
  char buffer[64];
  EXPECT_STREQ(file->Gets(buffer, sizeof(buffer)), "first\n");
  EXPECT_STREQ(file->Gets(buffer, sizeof(buffer)), "second\n");
  EXPECT_STREQ(file->Gets(buffer, sizeof(buffer)), "last");
  EXPECT_EQ(file->Gets(buffer, sizeof(buffer)), nullptr);  // EOF.
}

TEST_F(DlibcTest, GetsRespectsBufferSize) {
  ASSERT_TRUE(DWriteFile(fs_, "/long", "abcdefghij").ok());
  auto file = DOpen(fs_, "/long", "r");
  char buffer[4];
  EXPECT_STREQ(file->Gets(buffer, sizeof(buffer)), "abc");
  EXPECT_STREQ(file->Gets(buffer, sizeof(buffer)), "def");
}

TEST_F(DlibcTest, GetPutChar) {
  auto out = DOpen(fs_, "/c", "w");
  EXPECT_EQ(out->PutChar('A'), 'A');
  EXPECT_EQ(out->PutChar(0xFF), 0xFF);  // Bytes, not chars.
  ASSERT_TRUE(out->Flush().ok());
  auto in = DOpen(fs_, "/c", "r");
  EXPECT_EQ(in->GetChar(), 'A');
  EXPECT_EQ(in->GetChar(), 0xFF);
  EXPECT_EQ(in->GetChar(), -1);
}

TEST_F(DlibcTest, ElementwiseReadWrite) {
  auto out = DOpen(fs_, "/ints", "w");
  const int values[3] = {10, 20, 30};
  EXPECT_EQ(out->Write(values, sizeof(int), 3), 3u);
  ASSERT_TRUE(out->Flush().ok());

  auto in = DOpen(fs_, "/ints", "r");
  int readback[4] = {};
  // Only 3 complete elements available.
  EXPECT_EQ(in->Read(readback, sizeof(int), 4), 3u);
  EXPECT_EQ(readback[0], 10);
  EXPECT_EQ(readback[2], 30);
}

TEST_F(DlibcTest, ReadPlusUpdateMode) {
  ASSERT_TRUE(DWriteFile(fs_, "/u", "ABCDEF").ok());
  auto file = DOpen(fs_, "/u", "r+");
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->GetChar(), 'A');
  EXPECT_EQ(file->PutChar('x'), 'x');  // Overwrites 'B'.
  ASSERT_TRUE(file->Flush().ok());
  EXPECT_EQ(fs_.ReadFile("/u").value(), "AxCDEF");
}

TEST_F(DlibcTest, OneShotHelpers) {
  EXPECT_TRUE(DWriteFile(fs_, "/h", "payload").ok());
  EXPECT_EQ(DReadFile(fs_, "/h").value(), "payload");
  EXPECT_FALSE(DReadFile(fs_, "/missing").ok());
}

}  // namespace
}  // namespace dvfs
