// Unit tests for the dnet wire format: header encode/decode with every
// rejection path, invoke/outcome/status/join/mesh body round trips, the
// zero-copy aliasing contract of DecodeInvoke, and checked (never clamping)
// parsing of truncated or corrupt bodies.
#include "src/net/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/buffer.h"
#include "src/func/data.h"

namespace dnet {
namespace {

using dfunc::DataItem;
using dfunc::DataSet;
using dfunc::DataSetList;

std::string Concat(const std::vector<dbase::BufferSlice>& chunks) {
  std::string out;
  for (const auto& chunk : chunks) {
    out.append(chunk.view());
  }
  return out;
}

dbase::BufferSlice SliceOf(std::string bytes) {
  return dbase::BufferSlice(dbase::Buffer::FromString(std::move(bytes)));
}

TEST(WireHeaderTest, RoundTrip) {
  FrameHeader header;
  header.type = FrameType::kInvoke;
  header.flags = kFlagShed;
  header.body_len = 12345;
  header.request_id = 0xABCDEF0123456789ull;
  const std::string bytes = EncodeFrameHeader(header);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);

  auto decoded = DecodeFrameHeader(bytes, FrameLimits{});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, kWireVersion);
  EXPECT_EQ(decoded->type, FrameType::kInvoke);
  EXPECT_EQ(decoded->flags, kFlagShed);
  EXPECT_EQ(decoded->body_len, 12345u);
  EXPECT_EQ(decoded->request_id, 0xABCDEF0123456789ull);
}

TEST(WireHeaderTest, RejectsShortBuffer) {
  const std::string bytes = EncodeFrameHeader(FrameHeader{});
  auto decoded = DecodeFrameHeader(std::string_view(bytes).substr(0, 10), FrameLimits{});
  EXPECT_FALSE(decoded.ok());
}

TEST(WireHeaderTest, RejectsBadMagic) {
  std::string bytes = EncodeFrameHeader(FrameHeader{});
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(DecodeFrameHeader(bytes, FrameLimits{}).ok());
}

TEST(WireHeaderTest, RejectsUnknownVersion) {
  std::string bytes = EncodeFrameHeader(FrameHeader{});
  bytes[4] = 99;
  EXPECT_FALSE(DecodeFrameHeader(bytes, FrameLimits{}).ok());
}

TEST(WireHeaderTest, RejectsUnknownType) {
  std::string bytes = EncodeFrameHeader(FrameHeader{});
  bytes[5] = 77;  // No FrameType has this value.
  EXPECT_FALSE(DecodeFrameHeader(bytes, FrameLimits{}).ok());
}

TEST(WireHeaderTest, RejectsNonZeroReserved) {
  std::string bytes = EncodeFrameHeader(FrameHeader{});
  bytes[13] = 1;  // Reserved word must be zero.
  EXPECT_FALSE(DecodeFrameHeader(bytes, FrameLimits{}).ok());
}

TEST(WireHeaderTest, RejectsOversizedBody) {
  FrameLimits limits;
  limits.max_body_bytes = 1024;
  FrameHeader header;
  header.type = FrameType::kInvoke;
  header.body_len = 1025;
  EXPECT_FALSE(DecodeFrameHeader(EncodeFrameHeader(header), limits).ok());
  header.body_len = 1024;
  EXPECT_TRUE(DecodeFrameHeader(EncodeFrameHeader(header), limits).ok());
}

TEST(WireInvokeTest, RoundTrip) {
  WireInvoke invoke;
  invoke.composition = "MatMulChain";
  invoke.remaining_deadline_us = 2'500'000;
  invoke.priority = 1;
  invoke.invocation_id = 42;
  invoke.args.push_back(
      DataSet{"in", {DataItem{"k0", "payload zero"}, DataItem{"k1", "payload one"}}});
  invoke.args.push_back(DataSet{"cfg", {DataItem{"", std::string(100, 'x')}}});

  auto body = SliceOf(Concat(EncodeInvoke(invoke)));
  auto decoded = DecodeInvoke(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->composition, "MatMulChain");
  EXPECT_EQ(decoded->remaining_deadline_us, 2'500'000);
  EXPECT_EQ(decoded->priority, 1);
  EXPECT_EQ(decoded->invocation_id, 42u);
  ASSERT_EQ(decoded->args.size(), 2u);
  EXPECT_EQ(decoded->args[0].name, "in");
  ASSERT_EQ(decoded->args[0].items.size(), 2u);
  EXPECT_EQ(decoded->args[0].items[0].key, "k0");
  EXPECT_EQ(decoded->args[0].items[0].data.ToString(), "payload zero");
  EXPECT_EQ(decoded->args[1].items[0].data.ToString(), std::string(100, 'x'));
}

TEST(WireInvokeTest, DecodedPayloadsAliasTheBody) {
  WireInvoke invoke;
  invoke.composition = "Id";
  invoke.args.push_back(DataSet{"in", {DataItem{"", std::string(64 * 1024, 'z')}}});

  auto body = SliceOf(Concat(EncodeInvoke(invoke)));
  const auto before = dfunc::DataPlaneStats::Get().snapshot();
  auto decoded = DecodeInvoke(body);
  const auto after = dfunc::DataPlaneStats::Get().snapshot();
  ASSERT_TRUE(decoded.ok());
  // The unmarshal under DecodeInvoke aliases the receive buffer: payload
  // bytes move by reference, none are memcpy'd.
  EXPECT_EQ(after.bytes_copied, before.bytes_copied);
  EXPECT_GE(after.bytes_aliased, before.bytes_aliased + 64 * 1024);
}

TEST(WireInvokeTest, RejectsTruncatedBody) {
  WireInvoke invoke;
  invoke.composition = "Id";
  invoke.args.push_back(DataSet{"in", {DataItem{"", "hello"}}});
  std::string bytes = Concat(EncodeInvoke(invoke));
  for (size_t cut : {size_t{0}, size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    auto truncated = DecodeInvoke(SliceOf(bytes.substr(0, cut)));
    EXPECT_FALSE(truncated.ok()) << "cut=" << cut;
    if (!truncated.ok()) {
      EXPECT_EQ(truncated.status().code(), dbase::StatusCode::kInvalidArgument);
    }
  }
}

TEST(WireOutcomeTest, OkRoundTripCarriesSets) {
  WireOutcome outcome;
  outcome.sets.push_back(DataSet{"out", {DataItem{"r", "result bytes"}}});
  auto body = SliceOf(Concat(EncodeOutcome(outcome)));
  auto decoded = DecodeOutcome(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, dbase::StatusCode::kOk);
  ASSERT_EQ(decoded->sets.size(), 1u);
  EXPECT_EQ(decoded->sets[0].items[0].data.ToString(), "result bytes");
}

TEST(WireOutcomeTest, ErrorRoundTripCarriesTaxonomy) {
  WireOutcome outcome;
  outcome.code = dbase::StatusCode::kInternal;
  outcome.message = "sandbox crashed";
  outcome.failure_kind = 1;  // dpolicy::FailureKind::kCrash.
  outcome.retries_attempted = 2;
  auto decoded = DecodeOutcome(SliceOf(Concat(EncodeOutcome(outcome))));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, dbase::StatusCode::kInternal);
  EXPECT_EQ(decoded->message, "sandbox crashed");
  EXPECT_EQ(decoded->failure_kind, 1);
  EXPECT_EQ(decoded->retries_attempted, 2u);
}

TEST(WireOutcomeTest, RejectsCorruptBody) {
  WireOutcome outcome;
  outcome.sets.push_back(DataSet{"out", {DataItem{"", "x"}}});
  std::string bytes = Concat(EncodeOutcome(outcome));
  std::string corrupt = bytes;
  corrupt.resize(corrupt.size() / 2);
  EXPECT_FALSE(DecodeOutcome(SliceOf(corrupt)).ok());
}

TEST(WireStatusTest, RoundTrip) {
  WireNodeStatus status;
  status.node_name = "engine-3";
  status.signals.compute_workers = 6;
  status.signals.comm_workers = 2;
  status.signals.compute_backlog = 17;
  status.signals.inflight_interactive = 4;
  status.signals.admission_shed = 9;
  status.signals.warm_pool_shelved = 3;
  status.resident_compositions = {"Id", "MatMulChain"};
  status.inflight = 5;
  status.admission_cap = 256;

  auto decoded = DecodeNodeStatus(SliceOf(EncodeNodeStatus(status)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->node_name, "engine-3");
  EXPECT_EQ(decoded->signals.compute_workers, 6);
  EXPECT_EQ(decoded->signals.comm_workers, 2);
  EXPECT_EQ(decoded->signals.compute_backlog, 17u);
  EXPECT_EQ(decoded->signals.inflight_interactive, 4u);
  EXPECT_EQ(decoded->signals.admission_shed, 9u);
  EXPECT_EQ(decoded->signals.warm_pool_shelved, 3u);
  EXPECT_EQ(decoded->resident_compositions,
            (std::vector<std::string>{"Id", "MatMulChain"}));
  EXPECT_EQ(decoded->inflight, 5u);
  EXPECT_EQ(decoded->admission_cap, 256u);
}

TEST(WireStatusTest, RejectsTruncation) {
  WireNodeStatus status;
  status.node_name = "n";
  status.resident_compositions = {"Id"};
  std::string bytes = EncodeNodeStatus(status);
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    EXPECT_FALSE(DecodeNodeStatus(SliceOf(bytes.substr(0, cut))).ok()) << "cut=" << cut;
  }
}

TEST(WireJoinTest, RoundTrip) {
  auto decoded = DecodeJoin(SliceOf(EncodeJoin(WireJoin{"router-a"})));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->node_name, "router-a");
}

TEST(WireMeshTest, RoundTrip) {
  WireMeshReply reply;
  reply.latency_us = 777;
  reply.response = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
  auto decoded = DecodeMeshReply(SliceOf(EncodeMeshReply(reply)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->latency_us, 777);
  EXPECT_EQ(decoded->response, reply.response);
}

}  // namespace
}  // namespace dnet
