// Tests for the function ABI: data sets, marshalling (property round-trips),
// the function context (both set and filesystem views), the registry, and
// the built-in compute functions.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/func/builtins.h"
#include "src/func/data.h"
#include "src/func/function.h"
#include "src/func/registry.h"

namespace dfunc {
namespace {

// -------------------------------------------------------------------- Data

TEST(DataTest, TotalBytes) {
  DataSetList sets;
  sets.push_back(DataSet{"a", {DataItem{"k", "12345"}, DataItem{"", "xy"}}});
  sets.push_back(DataSet{"b", {}});
  EXPECT_EQ(TotalBytes(sets), 8u);  // 1 + 5 + 0 + 2.
}

TEST(DataTest, FindSet) {
  DataSetList sets;
  sets.push_back(DataSet{"a", {}});
  sets.push_back(DataSet{"b", {}});
  EXPECT_EQ(FindSet(sets, "b"), &sets[1]);
  EXPECT_EQ(FindSet(sets, "c"), nullptr);
  const DataSetList& const_sets = sets;
  EXPECT_EQ(FindSet(const_sets, "a"), &const_sets[0]);
}

TEST(MarshalTest, EmptyList) {
  auto round = UnmarshalSets(MarshalSets({}));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->empty());
}

TEST(MarshalTest, RoundTripPreservesEverything) {
  DataSetList sets;
  sets.push_back(DataSet{"first", {DataItem{"key1", "value1"}, DataItem{"", ""}}});
  sets.push_back(DataSet{"", {DataItem{"k", std::string("\0\x01\xff", 3)}}});
  sets.push_back(DataSet{"empty", {}});
  auto round = UnmarshalSets(MarshalSets(sets));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, sets);
}

TEST(MarshalTest, RejectsCorruptBuffers) {
  const std::string good = MarshalSets({DataSet{"s", {DataItem{"k", "v"}}}});
  EXPECT_FALSE(UnmarshalSets("").ok());
  EXPECT_FALSE(UnmarshalSets("shrt").ok());
  EXPECT_FALSE(UnmarshalSets(good.substr(0, good.size() - 1)).ok());  // Truncated.
  EXPECT_FALSE(UnmarshalSets(good + "x").ok());                      // Trailing.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(UnmarshalSets(bad_magic).ok());
}

// Property: random set lists round-trip bit-exactly.
class MarshalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MarshalPropertyTest, RandomRoundTrip) {
  dbase::Rng rng(GetParam());
  DataSetList sets;
  const int num_sets = static_cast<int>(rng.NextBounded(5));
  for (int s = 0; s < num_sets; ++s) {
    DataSet set;
    set.name = "set" + std::to_string(rng.NextBounded(100));
    const int num_items = static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < num_items; ++i) {
      DataItem item;
      if (rng.Bernoulli(0.5)) {
        item.key = "key" + std::to_string(rng.NextBounded(10));
      }
      const size_t len = rng.NextBounded(2000);
      item.data.MutableString().resize(len);
      for (auto& c : item.data.MutableString()) {
        c = static_cast<char>(rng.NextBounded(256));
      }
      set.items.push_back(std::move(item));
    }
    sets.push_back(std::move(set));
  }
  auto round = UnmarshalSets(MarshalSets(sets));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, sets);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarshalPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --------------------------------------------------------------- Context

TEST(FunctionCtxTest, SetAccessors) {
  DataSetList inputs;
  inputs.push_back(DataSet{"in", {DataItem{"", "payload"}}});
  FunctionCtx ctx(std::move(inputs));
  EXPECT_NE(ctx.input_set("in"), nullptr);
  EXPECT_EQ(ctx.input_set("out"), nullptr);
  EXPECT_EQ(ctx.SingleInput("in").value(), "payload");
  EXPECT_FALSE(ctx.SingleInput("missing").ok());
}

TEST(FunctionCtxTest, SingleInputEmptySetFails) {
  DataSetList inputs;
  inputs.push_back(DataSet{"in", {}});
  FunctionCtx ctx(std::move(inputs));
  EXPECT_FALSE(ctx.SingleInput("in").ok());
}

TEST(FunctionCtxTest, EmitOutputGroupsBySet) {
  FunctionCtx ctx({});
  ctx.EmitOutput("a", "1");
  ctx.EmitOutput("b", "2", "key-b");
  ctx.EmitOutput("a", "3");
  ASSERT_EQ(ctx.outputs().size(), 2u);
  const DataSet* a = FindSet(ctx.outputs(), "a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 2u);
  EXPECT_EQ(a->items[1].data, "3");
  const DataSet* b = FindSet(ctx.outputs(), "b");
  ASSERT_EQ(b->items.size(), 1u);
  EXPECT_EQ(b->items[0].key, "key-b");
}

TEST(FunctionCtxTest, FilesystemViewOfInputs) {
  DataSetList inputs;
  inputs.push_back(DataSet{"docs", {DataItem{"readme", "hello"}, DataItem{"", "anon"}}});
  FunctionCtx ctx(std::move(inputs));
  EXPECT_FALSE(ctx.fs_materialized());
  auto& fs = ctx.fs();
  EXPECT_TRUE(ctx.fs_materialized());
  EXPECT_EQ(fs.ReadFile("/in/docs/readme").value(), "hello");
  EXPECT_EQ(fs.ReadFile("/in/docs/item_1").value(), "anon");
}

TEST(FunctionCtxTest, DuplicateKeysDisambiguated) {
  DataSetList inputs;
  inputs.push_back(DataSet{"s", {DataItem{"k", "first"}, DataItem{"k", "second"}}});
  FunctionCtx ctx(std::move(inputs));
  auto& fs = ctx.fs();
  EXPECT_EQ(fs.ReadFile("/in/s/k").value(), "first");
  EXPECT_EQ(fs.ReadFile("/in/s/k_1").value(), "second");
}

TEST(FunctionCtxTest, CollectFsOutputs) {
  FunctionCtx ctx({});
  auto& fs = ctx.fs();
  ASSERT_TRUE(fs.Mkdir("/out/result").ok());
  ASSERT_TRUE(fs.WriteFile("/out/result/part0", "A").ok());
  ASSERT_TRUE(fs.WriteFile("/out/result/part1", "B").ok());
  ASSERT_TRUE(ctx.CollectFsOutputs().ok());
  const DataSet* result = FindSet(ctx.outputs(), "result");
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->items.size(), 2u);
  EXPECT_EQ(result->items[0].key, "part0");
  EXPECT_EQ(result->items[0].data, "A");
}

TEST(FunctionCtxTest, CollectFsOutputsNoFsIsNoop) {
  FunctionCtx ctx({});
  EXPECT_TRUE(ctx.CollectFsOutputs().ok());
  EXPECT_TRUE(ctx.outputs().empty());
}

TEST(FunctionCtxTest, CancelFlag) {
  FunctionCtx ctx({});
  EXPECT_FALSE(ctx.cancelled());
  std::atomic<bool> flag{false};
  ctx.set_cancel_flag(&flag);
  EXPECT_FALSE(ctx.cancelled());
  flag.store(true);
  EXPECT_TRUE(ctx.cancelled());
}

// --------------------------------------------------------------- Registry

TEST(RegistryTest, RegisterLookup) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.Register({.name = "f", .body = EchoFunction}).ok());
  EXPECT_TRUE(registry.Contains("f"));
  EXPECT_FALSE(registry.Contains("g"));
  auto spec = registry.Lookup("f");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "f");
  EXPECT_FALSE(registry.Lookup("g").ok());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryTest, RejectsDuplicatesAndInvalid) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.Register({.name = "f", .body = EchoFunction}).ok());
  EXPECT_FALSE(registry.Register({.name = "f", .body = EchoFunction}).ok());
  EXPECT_FALSE(registry.Register({.name = "", .body = EchoFunction}).ok());
  EXPECT_FALSE(registry.Register({.name = "nobody", .body = nullptr}).ok());
}

TEST(RegistryTest, RegisterBuiltins) {
  FunctionRegistry registry;
  ASSERT_TRUE(RegisterBuiltins(registry).ok());
  for (const char* name : {"matmul", "array_stats", "echo", "fail", "spin"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
}

// --------------------------------------------------------------- Builtins

TEST(BuiltinsTest, Int64ArrayCodecRoundTrip) {
  const std::vector<int64_t> values = {0, 1, -1, INT64_MAX, INT64_MIN, 42};
  auto round = DecodeInt64Array(EncodeInt64Array(values));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, values);
  EXPECT_FALSE(DecodeInt64Array("123").ok());  // Not multiple of 8.
}

TEST(BuiltinsTest, MatMulAgainstIdentity) {
  const int n = 4;
  std::vector<int64_t> identity(n * n, 0);
  for (int i = 0; i < n; ++i) {
    identity[static_cast<size_t>(i) * n + i] = 1;
  }
  const std::vector<int64_t> a = MakeMatrix(n, 7);
  DataSetList inputs;
  inputs.push_back(DataSet{"A", {DataItem{"", EncodeInt64Array(a)}}});
  inputs.push_back(DataSet{"B", {DataItem{"", EncodeInt64Array(identity)}}});
  FunctionCtx ctx(std::move(inputs));
  ASSERT_TRUE(MatMulFunction(ctx).ok());
  const DataSet* c = FindSet(ctx.outputs(), "C");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(DecodeInt64Array(c->items[0].data).value(), a);
}

TEST(BuiltinsTest, MatMulMatchesReference) {
  const int n = 8;
  const auto a = MakeMatrix(n, 1);
  const auto b = MakeMatrix(n, 2);
  DataSetList inputs;
  inputs.push_back(DataSet{"A", {DataItem{"", EncodeInt64Array(a)}}});
  inputs.push_back(DataSet{"B", {DataItem{"", EncodeInt64Array(b)}}});
  FunctionCtx ctx(std::move(inputs));
  ASSERT_TRUE(MatMulFunction(ctx).ok());
  EXPECT_EQ(DecodeInt64Array(FindSet(ctx.outputs(), "C")->items[0].data).value(),
            MultiplyMatrices(a, b, n));
}

TEST(BuiltinsTest, MatMulRejectsBadShapes) {
  DataSetList inputs;
  inputs.push_back(DataSet{"A", {DataItem{"", EncodeInt64Array({1, 2})}}});
  inputs.push_back(DataSet{"B", {DataItem{"", EncodeInt64Array({1, 2})}}});
  FunctionCtx ctx(std::move(inputs));
  EXPECT_FALSE(MatMulFunction(ctx).ok());  // 2 elements is not square.

  DataSetList mismatched;
  mismatched.push_back(DataSet{"A", {DataItem{"", EncodeInt64Array({1})}}});
  mismatched.push_back(DataSet{"B", {DataItem{"", EncodeInt64Array({1, 2, 3, 4})}}});
  FunctionCtx ctx2(std::move(mismatched));
  EXPECT_FALSE(MatMulFunction(ctx2).ok());
}

TEST(BuiltinsTest, ArrayStats) {
  std::vector<int64_t> values(64);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i);
  }
  DataSetList inputs;
  inputs.push_back(DataSet{"data", {DataItem{"", EncodeInt64Array(values)}}});
  FunctionCtx ctx(std::move(inputs));
  ASSERT_TRUE(ArrayStatsFunction(ctx).ok());
  // Sampled every 8th: 0, 8, 16, ..., 56 → sum 224, min 0, max 56.
  EXPECT_EQ(FindSet(ctx.outputs(), "stats")->items[0].data, "sum=224 min=0 max=56");
}

TEST(BuiltinsTest, EchoPreservesKeysAndOrder) {
  DataSetList inputs;
  inputs.push_back(DataSet{"in", {DataItem{"k1", "a"}, DataItem{"k2", "b"}}});
  FunctionCtx ctx(std::move(inputs));
  ASSERT_TRUE(EchoFunction(ctx).ok());
  const DataSet* out = FindSet(ctx.outputs(), "out");
  ASSERT_EQ(out->items.size(), 2u);
  EXPECT_EQ(out->items[0].key, "k1");
  EXPECT_EQ(out->items[1].data, "b");
}

TEST(BuiltinsTest, FailingFunctionFails) {
  FunctionCtx ctx({});
  EXPECT_FALSE(FailingFunction(ctx).ok());
}

TEST(BuiltinsTest, InfiniteLoopHonorsCancel) {
  FunctionCtx ctx({});
  std::atomic<bool> flag{true};  // Pre-cancelled: returns immediately.
  ctx.set_cancel_flag(&flag);
  EXPECT_EQ(InfiniteLoopFunction(ctx).code(), dbase::StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace dfunc
