// Tests for the trace synthesizer/sampler (dtrace) and the discrete-event
// simulator (dsim): event ordering, FIFO server queueing math, workload
// generators, platform-model invariants, and sim-vs-runtime parity of the
// shared elasticity policies (KPA decision-logic units live in
// tests/policy_test.cc, next to the policy layer).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>

#include "src/base/thread.h"
#include "src/http/services.h"
#include "src/policy/elasticity.h"
#include "src/runtime/controller.h"
#include "src/runtime/platform.h"
#include "src/sim/calibration.h"
#include "src/sim/event_queue.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"
#include "src/trace/azure_trace.h"
#include "src/trace/sampler.h"

namespace {

using dbase::kMicrosPerSecond;
using dbase::Micros;

// ------------------------------------------------------------------- Trace

dtrace::AzureTraceConfig SmallTraceConfig() {
  dtrace::AzureTraceConfig config;
  config.num_functions = 40;
  config.duration_minutes = 5;
  config.seed = 7;
  return config;
}

TEST(AzureTraceTest, ShapeAndDeterminism) {
  const dtrace::Trace a = dtrace::SynthesizeAzureTrace(SmallTraceConfig());
  const dtrace::Trace b = dtrace::SynthesizeAzureTrace(SmallTraceConfig());
  EXPECT_EQ(a.functions.size(), 40u);
  EXPECT_EQ(a.duration_minutes, 5);
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (size_t f = 0; f < a.functions.size(); ++f) {
    EXPECT_EQ(a.functions[f].invocations_per_minute, b.functions[f].invocations_per_minute);
    EXPECT_EQ(a.functions[f].memory_bytes, b.functions[f].memory_bytes);
  }
  EXPECT_GT(a.TotalInvocations(), 0u);
}

TEST(AzureTraceTest, PopularityIsHeavyTailed) {
  dtrace::AzureTraceConfig config;
  config.num_functions = 200;
  config.duration_minutes = 10;
  config.seed = 21;
  const dtrace::Trace trace = dtrace::SynthesizeAzureTrace(config);
  std::vector<uint64_t> totals;
  for (const auto& fn : trace.functions) {
    totals.push_back(fn.TotalInvocations());
  }
  std::sort(totals.begin(), totals.end());
  uint64_t all = 0;
  uint64_t top_decile = 0;
  for (size_t i = 0; i < totals.size(); ++i) {
    all += totals[i];
    if (i >= totals.size() * 9 / 10) {
      top_decile += totals[i];
    }
  }
  // The hottest 10% of functions should dominate traffic.
  EXPECT_GT(static_cast<double>(top_decile), 0.5 * static_cast<double>(all));
}

TEST(AzureTraceTest, ArrivalsSortedAndInWindow) {
  const dtrace::Trace trace = dtrace::SynthesizeAzureTrace(SmallTraceConfig());
  const auto arrivals = trace.ToArrivals(3);
  EXPECT_EQ(arrivals.size(), trace.TotalInvocations());
  const Micros window = static_cast<Micros>(trace.duration_minutes) * 60 * kMicrosPerSecond;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].time_us, 0);
    EXPECT_LT(arrivals[i].time_us, window);
    EXPECT_GE(arrivals[i].duration_us, 1000);
    if (i > 0) {
      EXPECT_LE(arrivals[i - 1].time_us, arrivals[i].time_us);
    }
  }
}

TEST(SamplerTest, PreservesRateDistribution) {
  dtrace::AzureTraceConfig config;
  config.num_functions = 400;
  config.duration_minutes = 10;
  config.seed = 33;
  const dtrace::Trace source = dtrace::SynthesizeAzureTrace(config);
  dtrace::SamplerConfig sampler;
  sampler.target_functions = 100;
  const dtrace::Trace sampled = dtrace::SampleTrace(source, sampler);
  EXPECT_EQ(sampled.functions.size(), 100u);
  // Dense re-numbering.
  for (size_t f = 0; f < sampled.functions.size(); ++f) {
    EXPECT_EQ(sampled.functions[f].function_id, static_cast<int>(f));
  }
  EXPECT_LT(dtrace::RateDistributionDistance(source, sampled), 0.15);
}

TEST(SamplerTest, SmallSourcePassesThrough) {
  const dtrace::Trace source = dtrace::SynthesizeAzureTrace(SmallTraceConfig());
  dtrace::SamplerConfig sampler;
  sampler.target_functions = 100;  // > 40 functions available.
  const dtrace::Trace sampled = dtrace::SampleTrace(source, sampler);
  EXPECT_EQ(sampled.functions.size(), source.functions.size());
}

// ------------------------------------------------------------- Event queue

TEST(EventQueueTest, OrdersByTimeThenFifo) {
  dsim::EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(100, [&] { order.push_back(2); });
  queue.ScheduleAt(50, [&] { order.push_back(1); });
  queue.ScheduleAt(100, [&] { order.push_back(3); });  // Same time: FIFO.
  queue.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 100);
}

TEST(EventQueueTest, EventsMayScheduleEvents) {
  dsim::EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(10, [&] {
    ++fired;
    queue.ScheduleAfter(5, [&] { ++fired; });
  });
  queue.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.now(), 15);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  dsim::EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(10, [&] { ++fired; });
  queue.ScheduleAt(20, [&] { ++fired; });
  queue.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 15);
  queue.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(FifoServerTest, SingleServerSerializes) {
  dsim::EventQueue queue;
  dsim::FifoServer server(&queue, 1);
  std::vector<Micros> ends;
  for (int i = 0; i < 3; ++i) {
    server.Submit(100, [&](Micros, Micros end) { ends.push_back(end); });
  }
  queue.RunAll();
  EXPECT_EQ(ends, (std::vector<Micros>{100, 200, 300}));
  EXPECT_EQ(server.total_completed(), 3u);
}

TEST(FifoServerTest, ParallelServersOverlap) {
  dsim::EventQueue queue;
  dsim::FifoServer server(&queue, 2);
  std::vector<Micros> ends;
  for (int i = 0; i < 4; ++i) {
    server.Submit(100, [&](Micros, Micros end) { ends.push_back(end); });
  }
  queue.RunAll();
  EXPECT_EQ(ends, (std::vector<Micros>{100, 100, 200, 200}));
}

TEST(FifoServerTest, CapacityIncreaseDrainsQueue) {
  dsim::EventQueue queue;
  dsim::FifoServer server(&queue, 1);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    server.Submit(100, [&](Micros, Micros) { ++done; });
  }
  queue.RunUntil(100);
  EXPECT_EQ(done, 1);
  server.SetCapacity(4);
  queue.RunAll();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(queue.now(), 200);  // Remaining three ran in parallel.
}

// ---------------------------------------------------------------- Workload

TEST(WorkloadTest, PoissonStreamRateApproximatelyCorrect) {
  dsim::AppShape shape;
  shape.compute_us = 100;
  const auto requests = dsim::PoissonStream(shape, 1000.0, 10 * kMicrosPerSecond, 5);
  EXPECT_NEAR(static_cast<double>(requests.size()), 10000.0, 400.0);
  for (size_t i = 1; i < requests.size(); ++i) {
    EXPECT_LE(requests[i - 1].arrival_us, requests[i].arrival_us);
  }
}

TEST(WorkloadTest, BurstyStreamFollowsProfile) {
  dsim::AppShape shape;
  shape.compute_us = 100;
  const std::vector<dsim::RateSegment> profile = {
      {kMicrosPerSecond, 100.0}, {kMicrosPerSecond, 0.0}, {kMicrosPerSecond, 1000.0}};
  const auto requests = dsim::BurstyStream(shape, profile, 5);
  size_t in_first = 0;
  size_t in_second = 0;
  size_t in_third = 0;
  for (const auto& req : requests) {
    if (req.arrival_us < kMicrosPerSecond) {
      ++in_first;
    } else if (req.arrival_us < 2 * kMicrosPerSecond) {
      ++in_second;
    } else {
      ++in_third;
    }
  }
  EXPECT_NEAR(static_cast<double>(in_first), 100.0, 40.0);
  EXPECT_EQ(in_second, 0u);
  EXPECT_NEAR(static_cast<double>(in_third), 1000.0, 150.0);
}

TEST(WorkloadTest, MergeStreamsSorts) {
  dsim::AppShape a;
  a.app_id = 1;
  dsim::AppShape b;
  b.app_id = 2;
  auto merged = dsim::MergeStreams({dsim::PoissonStream(a, 100, kMicrosPerSecond, 1),
                                    dsim::PoissonStream(b, 100, kMicrosPerSecond, 2)});
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].arrival_us, merged[i].arrival_us);
  }
}

// ---------------------------------------------------------- Platform models

dsim::AppShape Matmul128Shape() {
  dsim::AppShape shape;
  shape.compute_us = dsim::Calibration::kMatmul128Us;
  shape.compute_jitter = 0.0;
  return shape;
}

TEST(DandelionSimTest, UnloadedLatencyNearServiceTime) {
  dsim::DandelionSimConfig config;
  config.cores = 4;
  config.enable_controller = false;
  const auto requests =
      dsim::PoissonStream(Matmul128Shape(), 10.0, 5 * kMicrosPerSecond, 11);
  auto metrics = dsim::SimulateDandelion(config, requests);
  EXPECT_EQ(metrics.completed, requests.size());
  const double expected_ms = dbase::MicrosToMillis(
      config.sandbox_us + config.dispatch_us + dsim::Calibration::kMatmul128Us);
  EXPECT_NEAR(metrics.latency_ms.Median(), expected_ms, 0.2);
}

TEST(DandelionSimTest, SaturationRaisesTail) {
  dsim::DandelionSimConfig config;
  config.cores = 4;
  config.enable_controller = false;
  // 3 compute cores × ~(2.2ms) service ≈ 1350 RPS capacity.
  auto low = dsim::SimulateDandelion(
      config, dsim::PoissonStream(Matmul128Shape(), 400.0, 5 * kMicrosPerSecond, 3));
  auto high = dsim::SimulateDandelion(
      config, dsim::PoissonStream(Matmul128Shape(), 1800.0, 5 * kMicrosPerSecond, 3));
  EXPECT_LT(low.latency_ms.Percentile(99), high.latency_ms.Percentile(99));
  EXPECT_GT(high.latency_ms.Percentile(99), 10.0);  // Clearly saturated.
}

TEST(DandelionSimTest, MemoryTrackedOnlyDuringExecution) {
  dsim::DandelionSimConfig config;
  config.cores = 4;
  config.enable_controller = false;
  config.track_memory = true;
  auto metrics = dsim::SimulateDandelion(
      config, dsim::PoissonStream(Matmul128Shape(), 50.0, 2 * kMicrosPerSecond, 9));
  ASSERT_FALSE(metrics.committed_mb.empty());
  for (const auto& point : metrics.committed_mb.points()) {
    EXPECT_GE(point.value, 0.0);
  }
  // Memory returns to zero once the queue drains.
  EXPECT_DOUBLE_EQ(metrics.committed_mb.points().back().value, 0.0);
}

TEST(DandelionSimTest, ControllerMovesCoresTowardComm) {
  dsim::DandelionSimConfig config;
  config.cores = 8;
  config.initial_comm_cores = 1;
  config.comm_parallelism = 4;  // Tight, so comm needs real cores.
  config.enable_controller = true;
  dsim::AppShape io_shape;
  io_shape.compute_us = 50;
  io_shape.comm_us = 5000;  // Heavily I/O-bound.
  auto metrics = dsim::SimulateDandelion(
      config, dsim::PoissonStream(io_shape, 2000.0, 3 * kMicrosPerSecond, 17));
  ASSERT_FALSE(metrics.comm_core_trace.empty());
  int max_comm = 0;
  for (const auto& [t, cores] : metrics.comm_core_trace) {
    max_comm = std::max(max_comm, cores);
  }
  EXPECT_GT(max_comm, 1);
}

TEST(DandelionSimTest, InjectedCrashesAreRetriedAndAccounted) {
  dsim::DandelionSimConfig config;
  config.cores = 4;
  config.enable_controller = false;
  config.crash_every_n = 10;  // Every 10th compute completion crashes.
  const auto requests =
      dsim::PoissonStream(Matmul128Shape(), 200.0, 5 * kMicrosPerSecond, 21);
  auto metrics = dsim::SimulateDandelion(config, requests);
  EXPECT_GT(metrics.crashes_injected, 0u);
  EXPECT_GT(metrics.retries, 0u);
  // Every request terminates exactly once: completed or failed, never both,
  // never neither — the retry path must not lose or double-count chains.
  EXPECT_EQ(metrics.completed + metrics.failed, requests.size());
  // The default budget absorbs most single crashes, so the overwhelming
  // majority of crashed requests still complete.
  EXPECT_GT(metrics.completed, (requests.size() * 9) / 10);
  // A retry can only follow a crash.
  EXPECT_LE(metrics.retries, metrics.crashes_injected);
}

TEST(DandelionSimTest, RetryDisabledFailsEveryCrashedRequest) {
  dsim::DandelionSimConfig config;
  config.cores = 4;
  config.enable_controller = false;
  config.crash_every_n = 5;
  config.retry.enabled = false;
  const auto requests =
      dsim::PoissonStream(Matmul128Shape(), 200.0, 5 * kMicrosPerSecond, 22);
  auto metrics = dsim::SimulateDandelion(config, requests);
  EXPECT_GT(metrics.crashes_injected, 0u);
  EXPECT_EQ(metrics.retries, 0u);
  // One crash = one failed request when nothing relaunches.
  EXPECT_EQ(metrics.failed, metrics.crashes_injected);
  EXPECT_EQ(metrics.completed + metrics.failed, requests.size());
}

TEST(DandelionSimTest, BreakerFastFailsUnderSustainedCrashes) {
  dsim::DandelionSimConfig config;
  config.cores = 4;
  config.enable_controller = false;
  config.crash_every_n = 1;  // Every compute stage crashes: the app is sick.
  config.retry.max_retries_interactive = 0;
  config.retry.breaker_trip_after = 2;
  config.retry.breaker_cooldown_us = 1 * kMicrosPerSecond;
  const auto requests =
      dsim::PoissonStream(Matmul128Shape(), 500.0, 2 * kMicrosPerSecond, 23);
  auto metrics = dsim::SimulateDandelion(config, requests);
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.failed, requests.size());
  // After the second failure the breaker opens and later arrivals are shed
  // without burning compute.
  EXPECT_GT(metrics.breaker_fast_fails, 0u);
  EXPECT_LT(metrics.crashes_injected, requests.size());
}

TEST(VmSimTest, ColdStartsDominateTail) {
  auto config = dsim::VmSimConfig::FirecrackerSnapshot(4, 0.97);
  const auto requests =
      dsim::PoissonStream(Matmul128Shape(), 100.0, 10 * kMicrosPerSecond, 23);
  auto metrics = dsim::SimulateVmPlatform(config, requests);
  EXPECT_EQ(metrics.completed, requests.size());
  EXPECT_NEAR(metrics.ColdFraction(), 0.03, 0.01);
  // Median is a warm request; p99.5 includes the ~33 ms cold path.
  EXPECT_LT(metrics.latency_ms.Median(), 5.0);
  EXPECT_GT(metrics.latency_ms.Percentile(99.5), 20.0);
}

TEST(VmSimTest, FreshBootsSlowerThanSnapshots) {
  const auto requests =
      dsim::PoissonStream(Matmul128Shape(), 20.0, 10 * kMicrosPerSecond, 29);
  auto fresh = dsim::SimulateVmPlatform(dsim::VmSimConfig::FirecrackerFresh(4, 0.0), requests);
  auto snap = dsim::SimulateVmPlatform(dsim::VmSimConfig::FirecrackerSnapshot(4, 0.0), requests);
  EXPECT_GT(fresh.latency_ms.Median(), snap.latency_ms.Median() * 3);
}

TEST(WasmtimeSimTest, SlowdownVisibleInLatency) {
  dsim::WasmtimeSimConfig config;
  config.cores = 4;
  const auto requests =
      dsim::PoissonStream(Matmul128Shape(), 10.0, 5 * kMicrosPerSecond, 31);
  auto metrics = dsim::SimulateWasmtime(config, requests);
  const double expected_ms = dbase::MicrosToMillis(
      config.sandbox_us + config.dispatch_us +
      static_cast<Micros>(dsim::Calibration::kMatmul128Us * config.slowdown));
  EXPECT_NEAR(metrics.latency_ms.Median(), expected_ms, 0.3);
}

TEST(DHybridSimTest, BestTpcDependsOnWorkload) {
  // Compute-bound: tpc=1 pinned beats tpc=5; I/O-bound: the reverse.
  dsim::AppShape compute = Matmul128Shape();
  dsim::AppShape io;
  io.compute_us = dsim::Calibration::kPhaseComputeUs;
  io.comm_us = dsim::Calibration::kFetchLatencyUs;

  auto run = [&](const dsim::AppShape& shape, int tpc, bool pinned, double rps) {
    dsim::DHybridSimConfig config;
    config.cores = 4;
    config.threads_per_core = tpc;
    config.pinned = pinned;
    config.compute_fraction =
        static_cast<double>(shape.compute_us) /
        static_cast<double>(shape.compute_us + shape.comm_us);
    auto metrics = dsim::SimulateDHybrid(
        config, dsim::PoissonStream(shape, rps, 5 * kMicrosPerSecond, 37));
    return metrics.latency_ms.Percentile(99);
  };

  // Compute-heavy at moderate load: pinning wins.
  EXPECT_LT(run(compute, 1, true, 1200.0), run(compute, 5, false, 1200.0));
  // I/O-heavy at high load: tpc=1 starves throughput → huge p99.
  EXPECT_GT(run(io, 1, true, 2500.0), run(io, 5, false, 2500.0));
}

TEST(TraceSimTest, KnativeCommitsFarMoreThanDandelion) {
  // Mirror the Fig. 1/10 pipeline: synthesize a population, sample 100
  // functions with the InVitro-style sampler (this guarantees the hot tail
  // is represented; direct small draws can miss it entirely).
  dtrace::AzureTraceConfig trace_config;
  trace_config.num_functions = 400;
  trace_config.duration_minutes = 12;
  trace_config.seed = 41;
  const dtrace::Trace population = dtrace::SynthesizeAzureTrace(trace_config);
  dtrace::SamplerConfig sampler_config;
  sampler_config.target_functions = 100;
  const dtrace::Trace trace = dtrace::SampleTrace(population, sampler_config);

  dsim::TraceSimConfig sim_config;
  auto knative = dsim::SimulateKnativeFirecrackerTrace(sim_config, trace, 1);
  auto dandelion = dsim::SimulateDandelionTrace(sim_config, trace, 1);

  EXPECT_EQ(knative.completed, trace.TotalInvocations());
  EXPECT_EQ(dandelion.completed, trace.TotalInvocations());

  const Micros window =
      static_cast<Micros>(trace.duration_minutes) * 60 * kMicrosPerSecond;
  const double knative_avg = knative.committed_mb.TimeWeightedAverage(window);
  const double dandelion_avg = dandelion.committed_mb.TimeWeightedAverage(window);
  EXPECT_GT(knative_avg, 4.0 * dandelion_avg);
  // Dandelion cold-starts everything; Knative keeps hot functions warm
  // (~3.3% cold with this seed, matching the paper's observation).
  EXPECT_DOUBLE_EQ(dandelion.ColdFraction(), 1.0);
  EXPECT_LT(knative.ColdFraction(), 0.15);
}

// ------------------------------------------- Sim-vs-runtime policy parity

// The same open-loop arrival trace — an I/O-heavy flood of fetch requests —
// runs through the discrete-event simulator and through the real runtime,
// both executing the shared dpolicy::ConcurrencyTargetPolicy (identical
// code, identical configuration). The core-allocation timelines must agree
// in shape: both start at the configured comm allocation, both shift toward
// comm first, and the peak comm-core counts agree within a small tolerance.
// (Exact tick-for-tick equality is not expected: the runtime samples real
// time under scheduler noise.)
TEST(PolicyParityTest, SimAndRuntimeAgreeUnderConcurrencyTarget) {
  constexpr int kWorkers = 6;
  constexpr int kCommParallelism = 2;
  constexpr int kRequests = 200;
  constexpr Micros kGapUs = 5 * dbase::kMicrosPerMilli;       // 200 RPS.
  constexpr Micros kCommLatencyUs = 40 * dbase::kMicrosPerMilli;
  constexpr Micros kTickUs = 20 * dbase::kMicrosPerMilli;

  const auto policy_factory = [] {
    dpolicy::ConcurrencyTargetPolicy::Options options;
    options.kpa.stable_window_us = 240 * dbase::kMicrosPerMilli;
    options.kpa.panic_window_us = 60 * dbase::kMicrosPerMilli;
    options.kpa.max_replicas = 1024;  // Clamped by the worker count.
    options.per_core_target = kCommParallelism;
    return std::make_unique<dpolicy::ConcurrencyTargetPolicy>(options);
  };

  // --- Simulator -----------------------------------------------------------
  dsim::DandelionSimConfig sim_config;
  sim_config.cores = kWorkers;
  sim_config.initial_comm_cores = 1;
  sim_config.comm_parallelism = kCommParallelism;
  sim_config.enable_controller = true;
  sim_config.controller_interval_us = kTickUs;
  sim_config.policy_factory = policy_factory;
  sim_config.sandbox_us = 300;
  std::vector<dsim::SimRequest> requests;
  for (int i = 0; i < kRequests; ++i) {
    dsim::SimRequest request;
    request.arrival_us = i * kGapUs;
    request.compute_us = 500;
    request.comm_us = kCommLatencyUs;
    requests.push_back(request);
  }
  const auto metrics = dsim::SimulateDandelion(sim_config, requests);
  ASSERT_FALSE(metrics.comm_core_trace.empty());
  int sim_max_comm = 0;
  int sim_first_shift = 0;  // +1 toward comm, -1 toward compute.
  int prev = sim_config.initial_comm_cores;
  for (const auto& [t, comm] : metrics.comm_core_trace) {
    sim_max_comm = std::max(sim_max_comm, comm);
    if (sim_first_shift == 0 && comm != prev) {
      sim_first_shift = comm > prev ? 1 : -1;
    }
    prev = comm;
  }

  // --- Real runtime --------------------------------------------------------
  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = kWorkers;
  platform_config.initial_comm_workers = 1;
  platform_config.comm_parallelism = kCommParallelism;
  platform_config.backend = dandelion::IsolationBackend::kThread;
  platform_config.enable_control_plane = true;
  platform_config.control_interval_us = kTickUs;
  platform_config.elasticity_policy_factory = policy_factory;
  dandelion::Platform platform(platform_config);

  ASSERT_TRUE(platform
                  .RegisterFunction(
                      {.name = "mkfetch",
                       .body =
                           [](dfunc::FunctionCtx& ctx) {
                             dhttp::HttpRequest request;
                             request.method = dhttp::Method::kGet;
                             request.target = "http://fetch.internal/data";
                             ctx.EmitOutput("req", request.Serialize());
                             return dbase::OkStatus();
                           }})
                  .ok());
  dhttp::LatencyModel latency;
  latency.base_us = kCommLatencyUs;
  latency.jitter_sigma = 0.0;
  platform.mesh().Register("fetch.internal",
                           std::make_shared<dhttp::LambdaService>(
                               [](const dhttp::HttpRequest&, const dhttp::Uri&) {
                                 return dhttp::HttpResponse::Ok("data");
                               }),
                           latency);
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Fetch(in) => out {
  mkfetch(in = all in) => (r = req);
  HTTP(Request = each r) => (out = Response);
}
)")
                  .ok());

  dbase::Latch latch(kRequests);
  dbase::Stopwatch pacer;
  for (int i = 0; i < kRequests; ++i) {
    const Micros target = i * kGapUs;
    while (pacer.ElapsedMicros() < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    dandelion::InvocationRequest request;
    request.composition = "Fetch";
    request.args.push_back(dfunc::DataSet{"in", {dfunc::DataItem{"", "x"}}});
    platform.Submit(std::move(request),
                    [&latch](dbase::Result<dfunc::DataSetList>) { latch.CountDown(); });
  }
  ASSERT_TRUE(latch.WaitFor(60 * kMicrosPerSecond));

  const auto history = platform.control_plane()->History();
  ASSERT_FALSE(history.empty());
  int rt_max_comm = 0;
  int rt_first_shift = 0;
  for (const auto& decision : history) {
    rt_max_comm = std::max(rt_max_comm, decision.comm_workers);
    if (rt_first_shift == 0 && decision.shifted != 0) {
      rt_first_shift = decision.shifted < 0 ? 1 : -1;  // shifted<0 = toward comm.
    }
  }

  // --- Shape agreement -----------------------------------------------------
  EXPECT_EQ(sim_first_shift, 1);  // Both grow the comm allocation first.
  EXPECT_EQ(rt_first_shift, 1);
  EXPECT_GE(sim_max_comm, 3);  // The flood demands real comm cores...
  EXPECT_GE(rt_max_comm, 3);
  EXPECT_LE(std::abs(sim_max_comm - rt_max_comm), 2);  // ...in agreeing numbers.
}

// The same paced open-loop arrival stream runs through the simulator's
// prewarm-pool model and through the real runtime's SandboxPool, both
// executing the shared dpolicy::PrewarmPolicy with identical options and
// tick cadence. The pool-depth timelines and the cold-start counts must
// agree in shape: both shelves warm up to comparable peaks, and after the
// warm-up phase both serve the bulk of requests from the pool. (Tick-for-
// tick equality is not expected: the runtime ticks on real time under
// scheduler noise.)
TEST(PolicyParityTest, SimAndRuntimeAgreeUnderPrewarmPolicy) {
  constexpr int kWorkers = 4;
  constexpr int kRequests = 200;
  constexpr Micros kGapUs = 5 * dbase::kMicrosPerMilli;  // 200 RPS.
  constexpr Micros kComputeUs = 500;
  constexpr Micros kTickUs = 25 * dbase::kMicrosPerMilli;

  dpolicy::PrewarmOptions prewarm;
  prewarm.ewma_alpha = 0.5;
  prewarm.provision_window_us = 25 * dbase::kMicrosPerMilli;
  prewarm.headroom = 1.25;
  prewarm.scale_to_zero_after_us = 2 * kMicrosPerSecond;
  prewarm.max_depth = 8;

  // --- Simulator -----------------------------------------------------------
  dsim::DandelionSimConfig sim_config;
  sim_config.cores = kWorkers;
  sim_config.enable_controller = false;
  sim_config.enable_prewarm_pool = true;
  sim_config.prewarm = prewarm;
  sim_config.prewarm_tick_us = kTickUs;
  sim_config.prewarm_max_depth = 8;
  sim_config.sandbox_us = 300;
  std::vector<dsim::SimRequest> requests;
  for (int i = 0; i < kRequests; ++i) {
    dsim::SimRequest request;
    request.arrival_us = i * kGapUs;
    request.compute_us = kComputeUs;
    requests.push_back(request);
  }
  const auto metrics = dsim::SimulateDandelion(sim_config, requests);
  ASSERT_FALSE(metrics.pool_depth_trace.empty());
  int sim_peak_depth = 0;
  for (const auto& [t, depth] : metrics.pool_depth_trace) {
    sim_peak_depth = std::max(sim_peak_depth, depth);
  }
  EXPECT_EQ(metrics.cold_starts + metrics.warm_starts, static_cast<uint64_t>(kRequests));

  // --- Real runtime --------------------------------------------------------
  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = kWorkers;
  platform_config.backend = dandelion::IsolationBackend::kThread;
  platform_config.sleep_for_modeled_latency = false;
  platform_config.enable_sandbox_pool = true;
  platform_config.sandbox_pool.prewarm = prewarm;
  platform_config.sandbox_pool.max_depth_per_function = 8;
  platform_config.enable_control_plane = true;  // Drives the pool ticker.
  platform_config.control_interval_us = kTickUs;
  dandelion::Platform platform(platform_config);
  ASSERT_TRUE(platform
                  .RegisterFunction({.name = "spin",
                                     .body =
                                         [](dfunc::FunctionCtx& ctx) {
                                           dbase::SpinFor(kComputeUs);
                                           ctx.EmitOutput("out", "done");
                                           return dbase::OkStatus();
                                         },
                                     .context_bytes = 1 << 20})
                  .ok());
  ASSERT_TRUE(platform
                  .RegisterCompositionDsl(R"(
composition Spin(in) => out {
  spin(in = all in) => (out = out);
}
)")
                  .ok());

  dbase::Latch latch(kRequests);
  dbase::Stopwatch pacer;
  for (int i = 0; i < kRequests; ++i) {
    const Micros target = i * kGapUs;
    while (pacer.ElapsedMicros() < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    dandelion::InvocationRequest request;
    request.composition = "Spin";
    request.args.push_back(dfunc::DataSet{"in", {dfunc::DataItem{"", "x"}}});
    platform.Submit(std::move(request),
                    [&latch](dbase::Result<dfunc::DataSetList>) { latch.CountDown(); });
  }
  ASSERT_TRUE(latch.WaitFor(60 * kMicrosPerSecond));

  const dandelion::SandboxPoolStats stats = platform.sandbox_pool()->Stats();
  const auto depth_trace = platform.sandbox_pool()->DepthTrace();
  ASSERT_FALSE(depth_trace.empty());
  int rt_peak_depth = 0;
  for (const auto& [t, depth] : depth_trace) {
    rt_peak_depth = std::max(rt_peak_depth, depth);
  }
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kRequests));

  // --- Shape agreement -----------------------------------------------------
  // Both shelves warm up to comparable peak depths under the same policy.
  EXPECT_GE(sim_peak_depth, 1);
  EXPECT_GE(rt_peak_depth, 1);
  EXPECT_LE(std::abs(sim_peak_depth - rt_peak_depth), 3);
  // Both serve most requests warm once the EWMA converges: cold starts stay
  // a minority in each, and the counts agree within a loose band (the
  // runtime's tick phase drifts against the arrival pacer).
  EXPECT_LT(metrics.cold_starts, static_cast<uint64_t>(kRequests) / 2);
  EXPECT_LT(stats.misses, static_cast<uint64_t>(kRequests) / 2);
  EXPECT_LE(std::abs(static_cast<long>(metrics.cold_starts) - static_cast<long>(stats.misses)),
            kRequests / 4);
}

// With many functions each demanding warm capacity, the trace-sim shelf
// must honour the node-wide cap the way SandboxPool::Tick honours
// Config::max_total — otherwise the sim shelves more than the runtime
// ever could and the fig10 memory comparison loses its meaning.
TEST(TraceSimTest, PrewarmShelfHonoursGlobalCap) {
  dtrace::AzureTraceConfig trace_config;
  trace_config.num_functions = 30;
  trace_config.duration_minutes = 4;
  trace_config.seed = 47;
  const dtrace::Trace trace = dtrace::SynthesizeAzureTrace(trace_config);

  dsim::TraceSimConfig sim_config;
  sim_config.pool_mode = dsim::TraceSimConfig::PoolMode::kPrewarmPolicy;
  sim_config.prewarm.min_depth = 2;  // Every function wants 2 warm: 60 demanded.
  sim_config.prewarm_max_depth = 4;
  sim_config.prewarm_max_total = 5;  // Node-wide room for only 5.
  const auto metrics = dsim::SimulateDandelionTrace(sim_config, trace, 2);

  EXPECT_EQ(metrics.completed, trace.TotalInvocations());
  ASSERT_FALSE(metrics.pool_depth_trace.empty());
  int peak = 0;
  for (const auto& [t, depth] : metrics.pool_depth_trace) {
    peak = std::max(peak, depth);
    ASSERT_LE(depth, sim_config.prewarm_max_total);
  }
  EXPECT_EQ(peak, sim_config.prewarm_max_total);  // Demand saturates the cap.
  for (const auto& point : metrics.committed_mb.points()) {
    ASSERT_GE(point.value, -1e-9);
  }
}

TEST(TraceSimTest, MemoryNeverNegative) {
  dtrace::AzureTraceConfig trace_config;
  trace_config.num_functions = 30;
  trace_config.duration_minutes = 4;
  trace_config.seed = 43;
  const dtrace::Trace trace = dtrace::SynthesizeAzureTrace(trace_config);
  auto metrics = dsim::SimulateKnativeFirecrackerTrace(dsim::TraceSimConfig{}, trace, 2);
  for (const auto& point : metrics.committed_mb.points()) {
    ASSERT_GE(point.value, -1e-9);
  }
  for (const auto& point : metrics.active_mb.points()) {
    ASSERT_GE(point.value, -1e-9);
  }
}

}  // namespace
