// The Text2SQL agentic AI workflow of §7.7: parse the prompt, ask the LLM
// for SQL, extract it, run it against the database, format the rows. The
// LLM endpoint is simulated with the paper's measured latency (1238 ms for
// Gemma-3-4b-it on an H100 NVL); stage structure and data flow are real.
#include <cstdio>

#include "src/apps/text2sql_app.h"
#include "src/base/clock.h"
#include "src/runtime/platform.h"

int main() {
  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = 4;
  platform_config.backend = dandelion::IsolationBackend::kThread;
  dandelion::Platform platform(platform_config);

  dapps::Text2SqlConfig app_config;  // Paper latencies: LLM 1238 ms, DB 136 ms.
  dbase::Status installed = dapps::InstallText2SqlApp(platform, app_config);
  if (!installed.ok()) {
    std::fprintf(stderr, "install: %s\n", installed.ToString().c_str());
    return 1;
  }

  const std::string question = "What are the most populous cities of Japan?";
  std::printf("Q: %s\n\nrunning 5-stage workflow (parse -> LLM -> extract -> DB -> format)...\n",
              question.c_str());

  dbase::Stopwatch watch;
  auto answer = dapps::RunText2Sql(platform, question);
  const double ms = watch.ElapsedMillis();
  if (!answer.ok()) {
    std::fprintf(stderr, "run: %s\n", answer.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%s\n", answer->c_str());
  std::printf("end-to-end: %.0f ms (the LLM call dominates, as in the paper's ~2 s"
              " pipeline where inference is 61%%)\n", ms);
  return 0;
}
