// Elastic query processing (§7.7 / Figure 9): Star Schema Benchmark data
// lives in a simulated S3 object store; a composition fans one compute
// function out per lineorder partition ('each'), executes the per-partition
// plan with the columnar engine, and merges partials. Sandboxes cold-start
// per request — Dandelion's elasticity is what makes scatter-gather query
// execution practical.
#include <cstdio>

#include "src/apps/ssb_app.h"
#include "src/base/clock.h"
#include "src/base/string_util.h"
#include "src/runtime/platform.h"
#include "src/sql/ssb_queries.h"

int main() {
  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = 8;
  platform_config.initial_comm_workers = 2;
  platform_config.backend = dandelion::IsolationBackend::kThread;
  dandelion::Platform platform(platform_config);

  dapps::SsbAppConfig app_config;
  app_config.data.lineorder_rows = 60000;
  app_config.partitions = 6;
  auto handle = dapps::InstallSsbApp(platform, app_config);
  if (!handle.ok()) {
    std::fprintf(stderr, "install: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  std::printf("uploaded %s of SSB data (%d lineorder partitions + dimensions) to s3.internal\n\n",
              dbase::FormatBytes(static_cast<double>(handle->stored_bytes)).c_str(),
              handle->partitions);

  for (int query_id : dsql::SsbQueryIds()) {
    dbase::Stopwatch watch;
    auto csv = dapps::RunSsbQuery(platform, *handle, query_id);
    const double ms = watch.ElapsedMillis();
    if (!csv.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", dsql::SsbQueryName(query_id).c_str(),
                   csv.status().ToString().c_str());
      return 1;
    }
    // Print the header + first rows of the result.
    int lines = 0;
    std::string preview;
    for (auto line : dbase::SplitString(*csv, '\n')) {
      if (lines++ > 4 || line.empty()) {
        break;
      }
      preview += "    ";
      preview += line;
      preview += '\n';
    }
    std::printf("%s: %.1f ms (%d parallel partition functions)\n%s\n",
                dsql::SsbQueryName(query_id).c_str(), ms, handle->partitions, preview.c_str());
  }

  const auto stats = platform.dispatcher_stats();
  std::printf("total compute instances: %llu, comm instances: %llu\n",
              static_cast<unsigned long long>(stats.compute_instances),
              static_cast<unsigned long long>(stats.comm_instances));
  return 0;
}
