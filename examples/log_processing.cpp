// The distributed log-processing application of Figure 3 / Listings 1-2:
// Access → HTTP(auth) → FanOut → HTTP(shards, parallel) → Render.
//
// An auth service and four log-shard services run on the in-process service
// mesh with realistic latency models; the HTTP communication function
// carries the requests; the 'each' keyword parallelizes the shard fetches.
#include <cstdio>

#include "src/apps/log_app.h"
#include "src/base/clock.h"
#include "src/runtime/platform.h"

int main() {
  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = 6;
  platform_config.initial_comm_workers = 2;
  platform_config.backend = dandelion::IsolationBackend::kThread;
  dandelion::Platform platform(platform_config);

  dapps::LogAppConfig app_config;
  app_config.num_shards = 4;
  app_config.lines_per_shard = 8;
  dbase::Status installed = dapps::InstallLogApp(platform, app_config);
  if (!installed.ok()) {
    std::fprintf(stderr, "install: %s\n", installed.ToString().c_str());
    return 1;
  }

  std::printf("Composition (Listing 2):\n%s\n", dapps::kRenderLogsDsl);

  dbase::Stopwatch watch;
  auto html = dapps::RunLogApp(platform, app_config);
  const double ms = watch.ElapsedMillis();
  if (!html.ok()) {
    std::fprintf(stderr, "run: %s\n", html.status().ToString().c_str());
    return 1;
  }

  std::printf("Rendered %zu bytes of HTML in %.1f ms.\n", html->size(), ms);
  std::printf("--- first lines ---\n%.*s...\n", 400, html->c_str());

  const auto stats = platform.dispatcher_stats();
  std::printf("\ncompute instances: %llu (Access, FanOut, Render)\n",
              static_cast<unsigned long long>(stats.compute_instances));
  std::printf("comm instances:    %llu (1 auth + %d parallel shard fetches)\n",
              static_cast<unsigned long long>(stats.comm_instances), app_config.num_shards);
  return 0;
}
