// Image-compression pipeline (§7.6): fetch a QOI image from the object
// store, transcode it to PNG in a sandboxed compute function, store the
// result — the compute-intensive application of the Figure 8 multiplexing
// experiment. Demonstrates running the same composition across all four
// isolation backends.
#include <cstdio>

#include "src/apps/image_app.h"
#include "src/base/clock.h"
#include "src/runtime/platform.h"
#include "src/runtime/sandbox.h"

namespace {

double RunOnBackend(dandelion::IsolationBackend backend) {
  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = 4;
  platform_config.backend = backend;
  dandelion::Platform platform(platform_config);

  dapps::ImageAppConfig app_config;  // 96x64 RGBA → ~18 kB QOI, like §7.6.
  if (!dapps::InstallImageApp(platform, app_config).ok()) {
    return -1.0;
  }
  dbase::Stopwatch watch;
  auto status = dapps::RunImageApp(platform, 0);
  if (!status.ok() || *status != "stored") {
    std::fprintf(stderr, "  %s failed: %s\n",
                 std::string(dandelion::IsolationBackendName(backend)).c_str(),
                 status.ok() ? status->c_str() : status.status().ToString().c_str());
    return -1.0;
  }
  return watch.ElapsedMillis();
}

}  // namespace

int main() {
  std::printf("QOI -> PNG pipeline (fetch, transcode, store) per isolation backend:\n\n");
  for (auto backend :
       {dandelion::IsolationBackend::kThread, dandelion::IsolationBackend::kKvmSim,
        dandelion::IsolationBackend::kWasmSim, dandelion::IsolationBackend::kProcess}) {
    const double ms = RunOnBackend(backend);
    if (ms < 0) {
      return 1;
    }
    std::printf("  %-8s backend: %.1f ms end-to-end\n",
                std::string(dandelion::IsolationBackendName(backend)).c_str(), ms);
  }
  std::printf("\nEach run cold-started every sandbox on the critical path —\n"
              "no pre-provisioned state anywhere (the paper's 'true elasticity').\n");
  return 0;
}
