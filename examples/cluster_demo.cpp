// Multi-node cluster demo (§5's cluster manager): three worker nodes behind
// a load balancer, each running the same registered functions and
// compositions; invocations are spread round-robin or to the least-loaded
// node. The paper uses Dirigent for this role — here the nodes are
// in-process Platform instances.
#include <cstdio>

#include "src/base/clock.h"
#include "src/base/thread.h"
#include "src/func/builtins.h"
#include "src/runtime/cluster.h"

int main() {
  dandelion::Cluster::Config config;
  config.num_nodes = 3;
  config.policy = dandelion::LoadBalancePolicy::kRoundRobin;
  config.node_config.num_workers = 2;
  config.node_config.backend = dandelion::IsolationBackend::kThread;
  dandelion::Cluster cluster(config);

  if (!cluster.RegisterFunction({.name = "matmul", .body = dfunc::MatMulFunction}).ok() ||
      !cluster
           .RegisterCompositionDsl(
               "composition MatMul(A, B) => C { matmul(A = all A, B = all B) => (C = C); }")
           .ok()) {
    std::fprintf(stderr, "registration failed\n");
    return 1;
  }

  constexpr int kRequests = 24;
  const int n = 64;
  dbase::Latch latch(kRequests);
  std::atomic<int> ok_count{0};

  dbase::Stopwatch watch;
  for (int i = 0; i < kRequests; ++i) {
    // First-class requests travel through the load balancer: the deadline
    // and priority class follow the invocation to whichever node serves it.
    dandelion::InvocationRequest request;
    request.composition = "MatMul";
    request.args.push_back(dfunc::DataSet{
        "A", {dfunc::DataItem{"", dfunc::EncodeInt64Array(
                                      dfunc::MakeMatrix(n, 1 + static_cast<uint64_t>(i)))}}});
    request.args.push_back(dfunc::DataSet{
        "B", {dfunc::DataItem{"", dfunc::EncodeInt64Array(dfunc::MakeMatrix(n, 99))}}});
    request.priority = dandelion::PriorityClass::kBatch;
    cluster.InvokeAsync(std::move(request),
                        [&](dbase::Result<dfunc::DataSetList> result, int) {
                          if (result.ok()) {
                            ok_count.fetch_add(1);
                          }
                          latch.CountDown();
                        });
  }
  latch.Wait();
  const double ms = watch.ElapsedMillis();

  std::printf("%d matmul invocations across %d nodes in %.1f ms (%d ok)\n", kRequests,
              cluster.num_nodes(), ms, ok_count.load());
  const auto counts = cluster.InvocationsPerNode();
  const auto splits = cluster.CoreSplits();
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    std::printf("  node %d served %llu invocations (%d compute / %d comm cores)\n", node,
                static_cast<unsigned long long>(counts[static_cast<size_t>(node)]),
                splits[static_cast<size_t>(node)].compute_workers,
                splits[static_cast<size_t>(node)].comm_workers);
  }
  cluster.Shutdown();
  return 0;
}
