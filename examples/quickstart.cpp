// Quickstart: the smallest complete Dandelion program.
//
//  1. Create a Platform (one worker node: engines + dispatcher + mesh).
//  2. Register a compute function (128x128 int64 matrix multiplication —
//     the paper's microbenchmark workload).
//  3. Register a composition written in the DSL.
//  4. Invoke it and read the outputs.
//
// Build & run:  cmake -B build -S . && cmake --build build -j && ./build/example_quickstart
#include <cstdio>

#include "src/base/clock.h"
#include "src/func/builtins.h"
#include "src/runtime/platform.h"

int main() {
  // A 4-worker node using the CHERI-like in-process isolation backend.
  dandelion::PlatformConfig config;
  config.num_workers = 4;
  config.backend = dandelion::IsolationBackend::kThread;
  dandelion::Platform platform(config);

  // Compute functions are pure: declared inputs in, declared outputs out,
  // no syscalls. "matmul" consumes sets A and B and produces set C.
  dbase::Status registered = platform.RegisterFunction({
      .name = "matmul",
      .body = dfunc::MatMulFunction,
      .context_bytes = 16ull << 20,
  });
  if (!registered.ok()) {
    std::fprintf(stderr, "register function: %s\n", registered.ToString().c_str());
    return 1;
  }

  // The composition DAG, in the DSL of §4.1 (Listing 2 style).
  registered = platform.RegisterCompositionDsl(R"(
composition MatMul(A, B) => C {
  matmul(A = all A, B = all B) => (C = C);
}
)");
  if (!registered.ok()) {
    std::fprintf(stderr, "register composition: %s\n", registered.ToString().c_str());
    return 1;
  }

  // Invoke: every request cold-starts its own sandbox (that is the point —
  // sandbox creation is hundreds of microseconds, §7.2). Invocations are
  // first-class requests: name + args, plus an optional deadline and a
  // priority class the platform's admission control and engine queues act
  // on (interactive work overtakes batch backlog).
  const int n = 128;
  dandelion::InvocationRequest request;
  request.composition = "MatMul";
  request.args.push_back(dfunc::DataSet{
      "A", {dfunc::DataItem{"", dfunc::EncodeInt64Array(dfunc::MakeMatrix(n, 1))}}});
  request.args.push_back(dfunc::DataSet{
      "B", {dfunc::DataItem{"", dfunc::EncodeInt64Array(dfunc::MakeMatrix(n, 2))}}});
  request.deadline_us = dandelion::InvocationRequest::DeadlineIn(5 * dbase::kMicrosPerSecond);
  request.priority = dandelion::PriorityClass::kInteractive;

  dbase::Stopwatch watch;
  auto result = platform.Invoke(std::move(request));
  const double ms = watch.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "invoke: %s\n", result.status().ToString().c_str());
    return 1;
  }

  const auto product = dfunc::DecodeInt64Array((*result)[0].items[0].data);
  std::printf("MatMul(%dx%d) completed in %.2f ms (cold start included)\n", n, n, ms);
  std::printf("C[0][0] = %lld, C[%d][%d] = %lld\n",
              static_cast<long long>((*product)[0]), n - 1, n - 1,
              static_cast<long long>((*product)[static_cast<size_t>(n) * n - 1]));

  const auto stats = platform.dispatcher_stats();
  std::printf("invocations=%llu compute_instances=%llu\n",
              static_cast<unsigned long long>(stats.invocations_completed),
              static_cast<unsigned long long>(stats.compute_instances));
  return 0;
}
